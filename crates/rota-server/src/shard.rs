//! Sharded admission: N worker threads, each owning its own
//! [`AdmissionController`] over a disjoint slice of the system's
//! resources, fed by bounded queues.
//!
//! Sharding is by *location*: every location (and thus every resource
//! term and every computation, keyed by its first actor's origin) is
//! owned by exactly one shard, chosen by a stable hash. Shards never
//! share state, so workers never contend — the queue is the only
//! synchronization point. The cost of that isolation is honesty about
//! multi-location computations: a request is decided against its home
//! shard's resources only, so a computation spanning locations owned by
//! different shards may be rejected where a monolithic controller would
//! admit it (see DESIGN.md).
//!
//! Queues are bounded ([`std::sync::mpsc::sync_channel`]); when a
//! shard's queue is full the submitting connection gets
//! [`Response::Overloaded`] immediately instead of the server buffering
//! without bound.
//!
//! ## Panic isolation and idempotency
//!
//! A worker body that panics (an injected chaos drill, or a genuine
//! controller bug) is caught with [`std::panic::catch_unwind`] and the
//! worker restarts instead of the process dying. The waiter whose reply
//! channel died mid-decision gets [`Response::Overloaded`] — an honest
//! "try again" — and `server.shard.restarts{shard=N}` counts the event.
//! An *injected* panic fires before the controller mutates, so its
//! state is kept; an unrecognized panic rebuilds the controller from
//! the shard's pristine resource slice (an amnesiac restart: prior
//! commitments and offered resources are forgotten — see DESIGN.md §10).
//!
//! Computation names are idempotency keys, but a verdict is only
//! replayed when the retry's *content hash* (name, computation body,
//! priced requirement) matches the original's: a client that retries
//! (because a response was lost to a reset or truncation) or hedges
//! (duplicate in-flight attempt) gets the original verdict back
//! instead of committing the same computation twice, while a
//! *different* computation reusing a decided name is answered with an
//! explicit idempotency-conflict error — the stale verdict would be a
//! lie, and deciding it fresh would double-commit the same actor
//! names. Routing is deterministic by location hash, so a retry
//! always lands on the shard that holds the cached verdict.
//!
//! ## Pre-admission validation
//!
//! Before a request reaches the policy, the worker runs the
//! `rota-analyze` pre-admission lints against its live resource slice
//! ([`rota_analyze::prevalidate`]): structural defects and demand on
//! located types the shard has no supply for (R0006) are rejected
//! immediately with the structured diagnostics attached to the
//! decision, counted by `server.shard.lint_rejects{shard=N}`. Capacity
//! and deadline feasibility stay with the policy, whose verdict
//! carries the theorem-grade attribution.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rota_actor::ActorName;
use rota_admission::{
    AdmissionController, AdmissionObs, AdmissionPolicy, AdmissionRequest, ControllerStats, Decision,
};
use rota_analyze::{prevalidate, Report as LintReport, Severity as LintSeverity, SpecModel};
use rota_interval::TimePoint;
use rota_logic::State;
use rota_obs::{Counter, DecisionEvent, Gauge, Histogram, Journal, Registry};
use rota_resource::{Location, ResourceSet};

use crate::fault::{self, FaultInjector};
use crate::protocol::Response;

/// Stable location → shard routing: FNV-1a over the location name.
///
/// Deterministic across runs and processes, so clients, tests, and
/// operators can predict placement.
pub fn shard_of(location: &Location, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in location.name().bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % shards as u64) as usize
}

/// Splits a resource set into per-shard subsets by each term's first
/// location (a link belongs to its source node's shard).
pub fn split_by_shard(theta: &ResourceSet, shards: usize) -> Vec<ResourceSet> {
    let mut parts: Vec<Vec<rota_resource::ResourceTerm>> = vec![Vec::new(); shards.max(1)];
    for term in theta.to_terms() {
        let shard = shard_of(term.located().locations()[0], shards.max(1));
        parts[shard].push(term);
    }
    parts
        .into_iter()
        .map(|terms| {
            // PANIC-OK: terms came out of a valid ResourceSet, so the
            // subset cannot overflow; failure here is a library bug.
            ResourceSet::from_terms(terms).expect("subset of a valid set remains valid")
        })
        .collect()
}

/// The shard a request is routed to: its first actor's origin location,
/// or shard 0 for actor-less computations.
pub fn route_request(request: &AdmissionRequest, shards: usize) -> usize {
    request
        .computation()
        .actors()
        .first()
        .map_or(0, |gamma| shard_of(gamma.origin(), shards))
}

pub(crate) enum ShardMsg {
    Admit {
        request: Box<AdmissionRequest>,
        enqueued: Instant,
        reply: SyncSender<Response>,
    },
    Offer {
        theta: ResourceSet,
        reply: SyncSender<Result<u64, String>>,
    },
    Stats {
        reply: SyncSender<ControllerStats>,
    },
    /// Reports the shard's epoch and the resources still available
    /// after every commitment and tentative reservation — the basis a
    /// 2PC coordinator merges across shards and nodes.
    Snapshot {
        reply: SyncSender<(u64, ResourceSet)>,
    },
    /// Phase one of two-phase commit: decide `request` against the
    /// coordinator-supplied merged `basis` and, on accept, install the
    /// commitments tentatively with a TTL. Replies `Prepared`, a
    /// rejection `Decision`, or an error (stale epoch / uninstallable).
    Prepare {
        request: Box<AdmissionRequest>,
        basis: ResourceSet,
        expected_epoch: u64,
        ttl: Duration,
        reply: SyncSender<Response>,
    },
    /// Phase two: make the named reservation permanent. Idempotent for
    /// already-committed names; an expired or unknown name is an error.
    Commit {
        name: String,
        reply: SyncSender<Result<(), String>>,
    },
    /// Release the named reservation (or compensate a committed one
    /// after a failed commit round). Replies whether anything was
    /// actually released.
    Abort {
        name: String,
        reply: SyncSender<bool>,
    },
}

struct ShardObs {
    requests: Arc<Counter>,
    overloaded: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    request_ns: Arc<Histogram>,
    restarts: Arc<Counter>,
    dedup_hits: Arc<Counter>,
    lint_rejects: Arc<Counter>,
    reservations: Arc<Gauge>,
    twopc_prepared: Arc<Counter>,
    twopc_committed: Arc<Counter>,
    twopc_aborted: Arc<Counter>,
    twopc_expired: Arc<Counter>,
}

impl ShardObs {
    fn new(registry: &Registry, shard: usize) -> Self {
        ShardObs {
            requests: registry.counter(&format!("server.requests{{shard={shard}}}")),
            overloaded: registry.counter(&format!("server.overloaded{{shard={shard}}}")),
            queue_depth: registry.gauge(&format!("server.queue_depth{{shard={shard}}}")),
            request_ns: registry.histogram(
                &format!("server.request_ns{{shard={shard}}}"),
                Histogram::latency_ns_bounds(),
            ),
            restarts: registry.counter(&format!("server.shard.restarts{{shard={shard}}}")),
            dedup_hits: registry.counter(&format!("server.shard.dedup_hits{{shard={shard}}}")),
            lint_rejects: registry.counter(&format!("server.shard.lint_rejects{{shard={shard}}}")),
            reservations: registry.gauge(&format!("server.shard.reservations{{shard={shard}}}")),
            twopc_prepared: registry.counter(&format!("server.twopc.prepared{{shard={shard}}}")),
            twopc_committed: registry
                .counter(&format!("server.twopc.committed{{shard={shard}}}")),
            twopc_aborted: registry.counter(&format!("server.twopc.aborted{{shard={shard}}}")),
            twopc_expired: registry.counter(&format!("server.twopc.expired{{shard={shard}}}")),
        }
    }
}

/// The idempotency identity of a request: FNV-1a over its full debug
/// form, which covers the name, the computation body, and the priced
/// requirement. Two submissions dedup only when they are the *same*
/// request — a different body reusing a name hashes differently and
/// is decided on its own merits.
fn dedup_key(request: &AdmissionRequest) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in format!("{request:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// What the cache knows about a retried name.
enum CacheLookup {
    /// Never seen: decide it.
    Miss,
    /// Same name, same content: replay the verdict.
    Replay(Response),
    /// Same name, different content: refuse — the name was already
    /// decided for a different computation.
    Conflict,
}

/// Bounded LRU cache of recent verdicts, keyed by computation name with
/// the request's content hash ([`dedup_key`]) stored alongside — the
/// idempotency layer that keeps client retries and hedges from
/// double-committing, without ever replaying a verdict for a body it
/// was not decided on.
///
/// Eviction is least-recently-*used*: a replay refreshes its entry, so
/// a name being actively retried stays cached while cold verdicts age
/// out. A [`CacheLookup::Conflict`] deliberately does **not** refresh —
/// a stream of conflicting submissions must not keep the stale name
/// pinned forever. Eviction is safe against double commits even when an
/// evicted accept is resubmitted verbatim: the controller still holds
/// the actor names, so the re-decided request fails the install and is
/// rejected (see `AdmissionController::submit`) rather than committed a
/// second time.
struct DecisionCache {
    capacity: usize,
    /// Recency order, oldest at the front. Names are moved to the back
    /// on use; the front is the eviction victim.
    order: VecDeque<String>,
    verdicts: HashMap<String, (u64, Response)>,
}

impl DecisionCache {
    fn new(capacity: usize) -> DecisionCache {
        DecisionCache {
            capacity: capacity.max(1),
            order: VecDeque::new(),
            verdicts: HashMap::new(),
        }
    }

    /// Moves `name` to the most-recently-used position.
    fn touch(&mut self, name: &str) {
        if let Some(pos) = self.order.iter().position(|n| n == name) {
            if let Some(entry) = self.order.remove(pos) {
                self.order.push_back(entry);
            }
        }
    }

    fn lookup(&mut self, name: &str, hash: u64) -> CacheLookup {
        match self.verdicts.get(name) {
            None => CacheLookup::Miss,
            Some((cached_hash, response)) if *cached_hash == hash => {
                let response = response.clone();
                self.touch(name);
                CacheLookup::Replay(response)
            }
            Some(_) => CacheLookup::Conflict,
        }
    }

    fn insert(&mut self, name: String, hash: u64, response: Response) {
        if self
            .verdicts
            .insert(name.clone(), (hash, response))
            .is_some()
        {
            self.touch(&name);
            return;
        }
        self.order.push_back(name);
        if self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.verdicts.remove(&evicted);
            }
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        debug_assert_eq!(self.order.len(), self.verdicts.len());
        self.verdicts.len()
    }
}

/// A pool of shard workers behind bounded queues.
///
/// Dropping the pool closes every queue; workers drain what was already
/// enqueued and exit — that, plus joining the handles returned by
/// [`ShardPool::spawn`], is the graceful-drain path.
pub(crate) struct ShardPool {
    senders: Vec<SyncSender<ShardMsg>>,
    obs: Vec<Arc<ShardObs>>,
}

impl ShardPool {
    /// Spawns `shards` workers, each owning a controller over its slice
    /// of `theta`, all journaling into `journal` and counting into
    /// `registry` (admission metrics labeled by `policy`, server metrics
    /// by shard). `faults` enables forced-panic chaos drills;
    /// `dedup_capacity` bounds each worker's idempotency cache.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn<P>(
        policy: P,
        theta: &ResourceSet,
        shards: usize,
        queue_capacity: usize,
        dedup_capacity: usize,
        registry: &Arc<Registry>,
        journal: &Arc<Journal<DecisionEvent>>,
        faults: Option<Arc<FaultInjector>>,
    ) -> (ShardPool, Vec<JoinHandle<()>>)
    where
        P: AdmissionPolicy + Clone + Send + 'static,
    {
        let shards = shards.max(1);
        let slices = split_by_shard(theta, shards);
        let mut senders = Vec::with_capacity(shards);
        let mut obs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, slice) in slices.into_iter().enumerate() {
            let (tx, rx) = sync_channel::<ShardMsg>(queue_capacity.max(1));
            let shard_obs = Arc::new(ShardObs::new(registry, shard));
            let worker = ShardWorker {
                shard,
                policy: policy.clone(),
                pristine: slice,
                registry: Arc::clone(registry),
                journal: Arc::clone(journal),
                obs: Arc::clone(&shard_obs),
                faults: faults.clone(),
                dedup: DecisionCache::new(dedup_capacity),
                reservations: HashMap::new(),
                committed: HashMap::new(),
                committed_order: VecDeque::new(),
                epoch: 0,
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rota-shard-{shard}"))
                    .spawn(move || worker.run(&rx))
                    // PANIC-OK: thread spawn fails only when the OS is out
                    // of resources at startup; that is fatal by design.
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
            obs.push(shard_obs);
        }
        (ShardPool { senders, obs }, handles)
    }

    pub(crate) fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Routes and enqueues one admission request, waiting up to
    /// `timeout` for the verdict. Returns [`Response::Overloaded`] when
    /// the shard's queue is full and an error response on timeout.
    pub(crate) fn admit(&self, request: AdmissionRequest, timeout: Duration) -> Response {
        let shard = route_request(&request, self.shards());
        let obs = &self.obs[shard];
        obs.requests.inc();
        let (reply_tx, reply_rx) = sync_channel::<Response>(1);
        let msg = ShardMsg::Admit {
            request: Box::new(request),
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        match self.senders[shard].try_send(msg) {
            Ok(()) => obs.queue_depth.add(1),
            Err(TrySendError::Full(_)) => {
                obs.overloaded.inc();
                return Response::Overloaded { shard };
            }
            Err(TrySendError::Disconnected(_)) => {
                return Response::Error {
                    message: "server is draining".into(),
                }
            }
        }
        match reply_rx.recv_timeout(timeout) {
            Ok(response) => response,
            // A dropped reply sender means the worker panicked while
            // holding our request (it restarts; the request was never
            // decided). "Overloaded" is the honest verdict: try again.
            Err(RecvTimeoutError::Disconnected) => {
                obs.overloaded.inc();
                Response::Overloaded { shard }
            }
            Err(RecvTimeoutError::Timeout) => Response::Error {
                message: format!("request timed out after {}ms", timeout.as_millis()),
            },
        }
    }

    /// Splits an offered resource set across shards and installs each
    /// slice, waiting up to `timeout` per shard.
    pub(crate) fn offer(&self, theta: ResourceSet, timeout: Duration) -> Response {
        let mut installed = 0u64;
        for (shard, slice) in split_by_shard(&theta, self.shards()).into_iter().enumerate() {
            if slice.is_empty() {
                continue;
            }
            let terms = slice.term_count() as u64;
            let (reply_tx, reply_rx) = sync_channel::<Result<u64, String>>(1);
            let msg = ShardMsg::Offer {
                theta: slice,
                reply: reply_tx,
            };
            // Offers are rare control-plane traffic: block (with a bound)
            // rather than 503 on a momentarily full queue.
            if self.senders[shard].send_timeout_compat(msg, timeout).is_err() {
                return Response::Error {
                    message: format!("shard {shard} rejected the offer (draining or stuck)"),
                };
            }
            self.obs[shard].queue_depth.add(1);
            match reply_rx.recv_timeout(timeout) {
                Ok(Ok(_)) => installed += terms,
                Ok(Err(message)) => return Response::Error { message },
                Err(_) => {
                    return Response::Error {
                        message: format!("offer to shard {shard} timed out"),
                    }
                }
            }
        }
        Response::Offered { terms: installed }
    }

    /// Aggregates every shard's controller statistics.
    pub(crate) fn stats(&self, timeout: Duration) -> Response {
        let mut receivers = Vec::with_capacity(self.shards());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel::<ControllerStats>(1);
            if tx
                .send_timeout_compat(ShardMsg::Stats { reply: reply_tx }, timeout)
                .is_err()
            {
                return Response::Error {
                    message: format!("shard {shard} unavailable"),
                };
            }
            self.obs[shard].queue_depth.add(1);
            receivers.push(reply_rx);
        }
        let mut total = ControllerStats::default();
        for (shard, rx) in receivers.into_iter().enumerate() {
            match rx.recv_timeout(timeout) {
                Ok(stats) => {
                    total.accepted += stats.accepted;
                    total.rejected += stats.rejected;
                    total.completed += stats.completed;
                    total.missed += stats.missed;
                    total.withdrawn += stats.withdrawn;
                }
                Err(_) => {
                    return Response::Error {
                        message: format!("stats from shard {shard} timed out"),
                    }
                }
            }
        }
        Response::Stats {
            stats: total,
            shards: self.shards(),
        }
    }

    /// Collects every shard's epoch and remaining supply and merges the
    /// (disjoint) supplies into one resource set — the node's
    /// contribution to a 2PC coordinator's basis.
    pub(crate) fn cluster_state(
        &self,
        timeout: Duration,
    ) -> Result<(Vec<u64>, ResourceSet), String> {
        let mut receivers = Vec::with_capacity(self.shards());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel::<(u64, ResourceSet)>(1);
            if tx
                .send_timeout_compat(ShardMsg::Snapshot { reply: reply_tx }, timeout)
                .is_err()
            {
                return Err(format!("shard {shard} unavailable"));
            }
            self.obs[shard].queue_depth.add(1);
            receivers.push(reply_rx);
        }
        let mut epochs = Vec::with_capacity(self.shards());
        let mut merged = ResourceSet::new();
        for (shard, rx) in receivers.into_iter().enumerate() {
            let (epoch, theta) = rx
                .recv_timeout(timeout)
                .map_err(|_| format!("snapshot from shard {shard} timed out"))?;
            epochs.push(epoch);
            merged = merged
                .union(&theta)
                .map_err(|e| format!("merging shard {shard} snapshot: {e}"))?;
        }
        Ok((epochs, merged))
    }

    /// Broadcasts a 2PC prepare to every shard. All shards must answer
    /// `Prepared` for the prepare to stand; on any rejection, error, or
    /// timeout the partial reservations are aborted and the first
    /// non-prepared response is returned. Each shard installs the full
    /// commitment set — terms at locations a shard does not own are
    /// no-ops in its availability, so the union over shards subtracts
    /// each term exactly once.
    pub(crate) fn prepare(
        &self,
        request: AdmissionRequest,
        basis: &ResourceSet,
        epochs: &[u64],
        ttl: Duration,
        timeout: Duration,
    ) -> Response {
        if epochs.len() != self.shards() {
            return Response::Error {
                message: format!(
                    "epoch vector has {} entries but the node runs {} shard(s)",
                    epochs.len(),
                    self.shards()
                ),
            };
        }
        let name = request.name().to_string();
        let mut receivers = Vec::with_capacity(self.shards());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel::<Response>(1);
            let msg = ShardMsg::Prepare {
                request: Box::new(request.clone()),
                basis: basis.clone(),
                expected_epoch: epochs[shard],
                ttl,
                reply: reply_tx,
            };
            if tx.send_timeout_compat(msg, timeout).is_err() {
                self.abort(&name, timeout);
                return Response::Error {
                    message: format!("shard {shard} unavailable"),
                };
            }
            self.obs[shard].queue_depth.add(1);
            receivers.push(reply_rx);
        }
        let mut failure: Option<Response> = None;
        for (shard, rx) in receivers.into_iter().enumerate() {
            match rx.recv_timeout(timeout) {
                Ok(Response::Prepared { .. }) => {}
                Ok(other) => {
                    failure.get_or_insert(other);
                }
                Err(_) => {
                    failure.get_or_insert(Response::Error {
                        message: format!("prepare on shard {shard} timed out"),
                    });
                }
            }
        }
        match failure {
            None => Response::Prepared { name },
            Some(response) => {
                self.abort(&name, timeout);
                response
            }
        }
    }

    /// Broadcasts a 2PC commit. If any shard cannot commit (its
    /// reservation expired, or it timed out), already-committed shards
    /// are compensated with an abort and the error is returned.
    pub(crate) fn commit(&self, name: &str, timeout: Duration) -> Result<(), String> {
        let mut receivers = Vec::with_capacity(self.shards());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel::<Result<(), String>>(1);
            let msg = ShardMsg::Commit {
                name: name.to_string(),
                reply: reply_tx,
            };
            if tx.send_timeout_compat(msg, timeout).is_err() {
                self.abort(name, timeout);
                return Err(format!("shard {shard} unavailable"));
            }
            self.obs[shard].queue_depth.add(1);
            receivers.push(reply_rx);
        }
        let mut failure: Option<String> = None;
        for (shard, rx) in receivers.into_iter().enumerate() {
            match rx.recv_timeout(timeout) {
                Ok(Ok(())) => {}
                Ok(Err(err)) => {
                    failure.get_or_insert(format!("shard {shard}: {err}"));
                }
                Err(_) => {
                    failure.get_or_insert(format!("commit on shard {shard} timed out"));
                }
            }
        }
        match failure {
            None => Ok(()),
            Some(err) => {
                self.abort(name, timeout);
                Err(err)
            }
        }
    }

    /// Broadcasts a 2PC abort; returns whether any shard actually
    /// released a reservation (tentative or, compensating, committed).
    pub(crate) fn abort(&self, name: &str, timeout: Duration) -> bool {
        let mut receivers = Vec::with_capacity(self.shards());
        for (shard, tx) in self.senders.iter().enumerate() {
            let (reply_tx, reply_rx) = sync_channel::<bool>(1);
            let msg = ShardMsg::Abort {
                name: name.to_string(),
                reply: reply_tx,
            };
            if tx.send_timeout_compat(msg, timeout).is_err() {
                continue;
            }
            self.obs[shard].queue_depth.add(1);
            receivers.push(reply_rx);
        }
        let mut released = false;
        for rx in receivers {
            released |= rx.recv_timeout(timeout).unwrap_or(false);
        }
        released
    }
}

/// `SyncSender::send` with a deadline, built from `try_send` + park —
/// std's `send_timeout` is unstable.
trait SendTimeoutCompat<T> {
    fn send_timeout_compat(&self, msg: T, timeout: Duration) -> Result<(), ()>;
}

impl<T> SendTimeoutCompat<T> for SyncSender<T> {
    fn send_timeout_compat(&self, mut msg: T, timeout: Duration) -> Result<(), ()> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.try_send(msg) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Disconnected(_)) => return Err(()),
                Err(TrySendError::Full(back)) => {
                    if Instant::now() >= deadline {
                        return Err(());
                    }
                    msg = back;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

/// Verdicts remembered per shard for retry/hedge idempotency. Bounded
/// so a long-lived server cannot grow without limit; LRU eviction keeps
/// actively-retried names cached while cold verdicts age out.
pub(crate) const DEDUP_CAPACITY: usize = 1024;

/// Committed 2PC names remembered per shard so commits are idempotent
/// and a failed commit round can be compensated. Bounded like the
/// dedup cache; an entry aging out only forfeits late
/// re-commit/compensation for that name, never the installed
/// commitment itself.
const COMMITTED_CAPACITY: usize = 1024;

/// A tentatively-installed 2PC commitment: the actor names to withdraw
/// on abort or expiry, and the wall-clock instant the hold lapses.
struct Reservation {
    actors: Vec<ActorName>,
    expires_at: Instant,
}

/// Everything a shard worker needs to serve — and to *rebuild* its
/// controller after an unrecognized panic.
struct ShardWorker<P> {
    shard: usize,
    policy: P,
    /// The shard's original resource slice, kept for amnesiac restarts.
    pristine: ResourceSet,
    registry: Arc<Registry>,
    journal: Arc<Journal<DecisionEvent>>,
    obs: Arc<ShardObs>,
    faults: Option<Arc<FaultInjector>>,
    dedup: DecisionCache,
    /// Prepared-but-uncommitted 2PC holds, keyed by computation name.
    reservations: HashMap<String, Reservation>,
    /// Committed 2PC names → their actors, for idempotent re-commits
    /// and compensating aborts. Bounded by `committed_order`.
    committed: HashMap<String, Vec<ActorName>>,
    committed_order: VecDeque<String>,
    /// Bumped on every state mutation (accepted admit, offer, prepare,
    /// abort, expiry) — never on rejects or reads. A 2PC coordinator
    /// snapshots the epoch with the supply and sends it back with the
    /// prepare; a mismatch means the basis is stale and the prepare is
    /// refused rather than decided on outdated supply.
    epoch: u64,
}

impl<P: AdmissionPolicy + Clone> ShardWorker<P> {
    fn fresh_controller(&self) -> AdmissionController<P> {
        AdmissionController::new(self.policy.clone(), self.pristine.clone(), TimePoint::ZERO)
            .with_obs(
                AdmissionObs::new(&self.registry, self.policy.name())
                    .with_journal(Arc::clone(&self.journal)),
            )
    }

    /// Runs until every sender is gone (server drop/drain), serving what
    /// was already enqueued — the drain guarantee. Panics in the serve
    /// loop restart the worker instead of killing it; only the message
    /// being served is lost (its waiter gets `overloaded` via the
    /// dropped reply sender).
    fn run(mut self, rx: &Receiver<ShardMsg>) {
        let mut controller = self.fresh_controller();
        loop {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                Self::serve(&mut self, &mut controller, rx)
            }));
            match outcome {
                Ok(()) => return,
                Err(payload) => {
                    self.obs.restarts.inc();
                    // An injected drill panics *before* the controller
                    // mutates, so its state is intact. Anything else is
                    // a real bug mid-decision: the controller may be
                    // inconsistent, so rebuild from the pristine slice.
                    // The dedup cache survives either way — already-
                    // delivered verdicts stay authoritative. Tentative
                    // reservations reference controller in-flight
                    // entries, so the amnesiac rebuild forgets them
                    // with the rest of the state.
                    if !fault::is_injected_panic(payload.as_ref()) {
                        controller = self.fresh_controller();
                        self.reservations.clear();
                        self.committed.clear();
                        self.committed_order.clear();
                        self.obs.reservations.set(0);
                    }
                }
            }
        }
    }

    /// Withdraws every reservation whose TTL has lapsed — run lazily at
    /// the head of every message, so expiry needs no timer thread and
    /// is observable through any subsequent request (stats included).
    fn sweep_expired(&mut self, controller: &mut AdmissionController<P>) {
        if self.reservations.is_empty() {
            return;
        }
        let now = Instant::now();
        let lapsed: Vec<String> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.expires_at <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for name in lapsed {
            if let Some(reservation) = self.reservations.remove(&name) {
                controller.withdraw(&reservation.actors);
                self.epoch += 1;
                self.obs.twopc_expired.inc();
            }
        }
        self.obs.reservations.set(self.reservations.len() as i64);
    }

    /// Records a committed name (bounded), for idempotent re-commits
    /// and compensating aborts.
    fn record_committed(&mut self, name: String, actors: Vec<ActorName>) {
        if self.committed.insert(name.clone(), actors).is_none() {
            self.committed_order.push_back(name);
            if self.committed_order.len() > COMMITTED_CAPACITY {
                if let Some(old) = self.committed_order.pop_front() {
                    self.committed.remove(&old);
                }
            }
        }
    }

    fn serve(&mut self, controller: &mut AdmissionController<P>, rx: &Receiver<ShardMsg>) {
        while let Ok(msg) = rx.recv() {
            self.obs.queue_depth.add(-1);
            self.sweep_expired(controller);
            match msg {
                ShardMsg::Admit {
                    request,
                    enqueued,
                    reply,
                } => {
                    let key = dedup_key(&request);
                    match self.dedup.lookup(request.name(), key) {
                        CacheLookup::Replay(verdict) => {
                            self.obs.dedup_hits.inc();
                            let verdict = verdict.clone();
                            let _ = reply.try_send(verdict);
                            continue;
                        }
                        CacheLookup::Conflict => {
                            let _ = reply.try_send(Response::Error {
                                message: format!(
                                    "idempotency conflict: computation `{}` was already \
                                     decided with different content; use a fresh name",
                                    request.name()
                                ),
                            });
                            continue;
                        }
                        CacheLookup::Miss => {}
                    }
                    if self
                        .faults
                        .as_ref()
                        .is_some_and(|f| f.take_panic_ticket())
                    {
                        // Unwinding drops `reply`; the waiter sees a
                        // disconnect and answers `overloaded`.
                        panic!("{}", fault::INJECTED_PANIC);
                    }
                    // Pre-admission static analysis against this
                    // shard's live supply: structurally broken
                    // requests bounce with machine diagnostics before
                    // the policy spends scheduling time on them.
                    let model = SpecModel::from_parts(
                        &controller.state().theta().to_terms(),
                        request.computation(),
                    );
                    let lint = prevalidate(&model, &request.requirement().total_demand());
                    if lint.has_errors() {
                        self.obs.lint_rejects.inc();
                        let response = lint_response(&request, &lint, self.shard);
                        self.dedup
                            .insert(request.name().to_string(), key, response.clone());
                        let _ = reply.try_send(response);
                        continue;
                    }
                    let decision = controller.submit(&request);
                    if matches!(decision, Decision::Accept(_)) {
                        self.epoch += 1;
                    }
                    self.obs.request_ns.observe(
                        u64::try_from(enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                    let response = decision_response(&request, &decision, self.shard);
                    self.dedup
                        .insert(request.name().to_string(), key, response.clone());
                    // The waiter may have timed out and hung up; that's fine.
                    let _ = reply.try_send(response);
                }
                ShardMsg::Offer { theta, reply } => {
                    let result = controller
                        .offer_resources(theta)
                        .map(|()| 0)
                        .map_err(|e| e.to_string());
                    if result.is_ok() {
                        self.epoch += 1;
                    }
                    let _ = reply.try_send(result);
                }
                ShardMsg::Stats { reply } => {
                    let _ = reply.try_send(controller.stats());
                }
                ShardMsg::Snapshot { reply } => {
                    let _ =
                        reply.try_send((self.epoch, controller.state().expiring_resources()));
                }
                ShardMsg::Prepare {
                    request,
                    basis,
                    expected_epoch,
                    ttl,
                    reply,
                } => {
                    let name = request.name().to_string();
                    // Idempotent re-prepare: a coordinator retrying
                    // after a lost reply refreshes the hold instead of
                    // double-installing. Content is not re-verified —
                    // names are the 2PC identity, as in the dedup cache.
                    if let Some(reservation) = self.reservations.get_mut(&name) {
                        reservation.expires_at = Instant::now() + ttl;
                        let _ = reply.try_send(Response::Prepared { name });
                        continue;
                    }
                    if self.committed.contains_key(&name) {
                        let _ = reply.try_send(Response::Prepared { name });
                        continue;
                    }
                    if expected_epoch != self.epoch {
                        let _ = reply.try_send(Response::Error {
                            message: format!(
                                "stale-epoch: shard {} is at epoch {}, prepare expected \
                                 {expected_epoch}; re-snapshot and retry",
                                self.shard, self.epoch
                            ),
                        });
                        continue;
                    }
                    // Decide against the coordinator's merged basis:
                    // the same deterministic verdict every owner
                    // reaches, and exactly the verdict a single merged
                    // node would have issued.
                    let decision = self
                        .policy
                        .decide(&State::new(basis, TimePoint::ZERO), &request);
                    match decision {
                        Decision::Reject(_) => {
                            let _ = reply
                                .try_send(decision_response(&request, &decision, self.shard));
                        }
                        Decision::Accept(commitments) => {
                            let actors: Vec<ActorName> =
                                commitments.iter().map(|c| c.actor().clone()).collect();
                            match controller.install(commitments, request.deadline()) {
                                Ok(()) => {
                                    self.reservations.insert(
                                        name.clone(),
                                        Reservation {
                                            actors,
                                            expires_at: Instant::now() + ttl,
                                        },
                                    );
                                    self.epoch += 1;
                                    self.obs.twopc_prepared.inc();
                                    self.obs
                                        .reservations
                                        .set(self.reservations.len() as i64);
                                    let _ = reply.try_send(Response::Prepared { name });
                                }
                                Err(err) => {
                                    let _ = reply.try_send(Response::Error {
                                        message: format!(
                                            "shard {}: prepared commitments not installable: \
                                             {err}",
                                            self.shard
                                        ),
                                    });
                                }
                            }
                        }
                    }
                }
                ShardMsg::Commit { name, reply } => {
                    let result = if let Some(reservation) = self.reservations.remove(&name) {
                        self.record_committed(name, reservation.actors);
                        self.obs.twopc_committed.inc();
                        self.obs.reservations.set(self.reservations.len() as i64);
                        Ok(())
                    } else if self.committed.contains_key(&name) {
                        Ok(())
                    } else {
                        Err(format!(
                            "no reservation named `{name}` (expired or never prepared)"
                        ))
                    };
                    let _ = reply.try_send(result);
                }
                ShardMsg::Abort { name, reply } => {
                    let released = if let Some(reservation) = self.reservations.remove(&name) {
                        controller.withdraw(&reservation.actors);
                        self.epoch += 1;
                        self.obs.twopc_aborted.inc();
                        self.obs.reservations.set(self.reservations.len() as i64);
                        true
                    } else if let Some(actors) = self.committed.remove(&name) {
                        // Compensating abort: some other shard or node
                        // failed its commit, so this already-committed
                        // hold is rolled back to keep the cluster
                        // atomic.
                        self.committed_order.retain(|n| n != &name);
                        controller.withdraw(&actors);
                        self.epoch += 1;
                        self.obs.twopc_aborted.inc();
                        true
                    } else {
                        false
                    };
                    let _ = reply.try_send(released);
                }
            }
        }
    }
}

fn decision_response(request: &AdmissionRequest, decision: &Decision, shard: usize) -> Response {
    match decision {
        Decision::Accept(commitments) => Response::Decision {
            computation: request.name().to_string(),
            accepted: true,
            shard,
            reason: format!("{} commitment(s) scheduled", commitments.len()),
            violated_term: None,
            clause: None,
            diagnostics: Vec::new(),
        },
        Decision::Reject(reject) => Response::Decision {
            computation: request.name().to_string(),
            accepted: false,
            shard,
            reason: reject.to_string(),
            violated_term: reject.violated_term().map(str::to_string),
            clause: Some(reject.clause().to_string()),
            diagnostics: Vec::new(),
        },
    }
}

/// The decision for a request that failed pre-admission lints: a
/// rejection whose grounds are the analyzer's diagnostics rather than
/// a policy verdict.
fn lint_response(request: &AdmissionRequest, report: &LintReport, shard: usize) -> Response {
    let errors = report.count(LintSeverity::Error);
    Response::Decision {
        computation: request.name().to_string(),
        accepted: false,
        shard,
        reason: format!(
            "rejected by static analysis: {errors} lint error(s) (policy not consulted)"
        ),
        violated_term: None,
        clause: Some("static analysis (pre-admission)".to_string()),
        diagnostics: report
            .diagnostics()
            .iter()
            .map(|d| d.to_json(None))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rota_actor::{ActionKind, ActorComputation, DistributedComputation, Granularity, TableCostModel};
    use rota_admission::RotaPolicy;
    use rota_interval::TimeInterval;
    use rota_resource::{LocatedType, Rate, ResourceTerm};

    fn theta_at(locations: &[&str], rate: u64, end: u64) -> ResourceSet {
        ResourceSet::from_terms(locations.iter().map(|l| {
            ResourceTerm::new(
                Rate::new(rate),
                TimeInterval::from_ticks(0, end).unwrap(),
                LocatedType::cpu(Location::new(l)),
            )
        }))
        .unwrap()
    }

    fn request_at(name: &str, location: &str, evals: usize, deadline: u64) -> AdmissionRequest {
        let mut gamma = ActorComputation::new(format!("{name}-a"), location);
        for _ in 0..evals {
            gamma.push(ActionKind::evaluate());
        }
        AdmissionRequest::price(
            DistributedComputation::single(name, gamma, TimePoint::ZERO, TimePoint::new(deadline))
                .unwrap(),
            &TableCostModel::paper(),
            Granularity::MaximalRun,
        )
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 3, 8] {
            for name in ["l0", "l1", "l2", "node-west-17"] {
                let a = shard_of(&Location::new(name), shards);
                let b = shard_of(&Location::new(name), shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn split_assigns_every_term_to_its_location_shard() {
        let theta = theta_at(&["l0", "l1", "l2", "l3"], 4, 16);
        let parts = split_by_shard(&theta, 3);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(ResourceSet::term_count).sum();
        assert_eq!(total, 4);
        for (shard, part) in parts.iter().enumerate() {
            for term in part.to_terms() {
                assert_eq!(shard_of(term.located().locations()[0], 3), shard);
            }
        }
    }

    #[test]
    fn pool_admits_and_aggregates_stats() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0", "l1"], 4, 16);
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 2, 8, DEDUP_CAPACITY, &registry, &journal, None);
        let timeout = Duration::from_secs(5);
        // Feasible job at l0, infeasible (too much work) job at l1.
        let yes = pool.admit(request_at("yes", "l0", 1, 16), timeout);
        let no = pool.admit(request_at("no", "l1", 64, 16), timeout);
        assert!(matches!(yes, Response::Decision { accepted: true, .. }), "{yes:?}");
        assert!(matches!(no, Response::Decision { accepted: false, .. }), "{no:?}");
        match pool.stats(timeout) {
            Response::Stats { stats, shards } => {
                assert_eq!(shards, 2);
                assert_eq!(stats.accepted, 1);
                assert_eq!(stats.rejected, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(journal.len(), 2, "both verdicts journaled");
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = registry.snapshot();
        let routed: u64 = (0..2)
            .map(|s| snap.counter(&format!("server.requests{{shard={s}}}")).unwrap())
            .sum();
        assert_eq!(routed, 2);
    }

    #[test]
    fn offer_reaches_the_owning_shard() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(8));
        let (pool, handles) = ShardPool::spawn(
            RotaPolicy,
            &ResourceSet::new(),
            2,
            4,
            DEDUP_CAPACITY,
            &registry,
            &journal,
            None,
        );
        let timeout = Duration::from_secs(5);
        // Without resources the job is refused; after an offer it fits.
        let before = pool.admit(request_at("j", "l0", 1, 16), timeout);
        assert!(matches!(before, Response::Decision { accepted: false, .. }));
        match pool.offer(theta_at(&["l0"], 4, 16), timeout) {
            Response::Offered { terms } => assert_eq!(terms, 1),
            other => panic!("unexpected {other:?}"),
        }
        let after = pool.admit(request_at("j2", "l0", 1, 16), timeout);
        assert!(matches!(after, Response::Decision { accepted: true, .. }), "{after:?}");
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn repeated_name_returns_cached_verdict() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 1, 8, DEDUP_CAPACITY, &registry, &journal, None);
        let timeout = Duration::from_secs(5);
        let first = pool.admit(request_at("same", "l0", 1, 16), timeout);
        let again = pool.admit(request_at("same", "l0", 1, 16), timeout);
        assert_eq!(first, again, "idempotent by request content");
        // Only the first submission reached the controller.
        assert_eq!(journal.len(), 1);
        assert_eq!(
            registry
                .snapshot()
                .counter("server.shard.dedup_hits{shard=0}"),
            Some(1)
        );
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn same_name_different_body_is_not_deduped() {
        // Regression: the cache used to key on the computation name
        // alone, so a *different* computation reusing a name was
        // answered with the stale verdict — the client saw a decision
        // about a body the controller never looked at. Now the content
        // hash disagrees and the retry is refused outright.
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 1, 8, DEDUP_CAPACITY, &registry, &journal, None);
        let timeout = Duration::from_secs(5);
        let first = pool.admit(request_at("same", "l0", 1, 16), timeout);
        assert!(matches!(first, Response::Decision { accepted: true, .. }), "{first:?}");
        // Same name, different body: neither the stale verdict nor a
        // double commit — an explicit conflict.
        let conflicting = pool.admit(request_at("same", "l0", 2, 16), timeout);
        match &conflicting {
            Response::Error { message } => {
                assert!(message.contains("idempotency conflict"), "{message}");
            }
            other => panic!("expected a conflict error, got {other:?}"),
        }
        assert_eq!(journal.len(), 1, "the conflicting body never reached the controller");
        assert_eq!(
            registry
                .snapshot()
                .counter("server.shard.dedup_hits{shard=0}")
                .unwrap_or(0),
            0,
            "a conflict is not a dedup hit"
        );
        // An identical retry of the first body still dedups.
        let replay = pool.admit(request_at("same", "l0", 1, 16), timeout);
        assert_eq!(replay, first);
        assert_eq!(journal.len(), 1, "the replay was served from cache");
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn lint_erroring_request_bounces_with_diagnostics() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 1, 8, DEDUP_CAPACITY, &registry, &journal, None);
        let timeout = Duration::from_secs(5);
        // Demand at a location with no declared supply: R0006, decided
        // by the analyzer, never by the policy.
        let bounced = pool.admit(request_at("ghost", "l9", 1, 16), timeout);
        match &bounced {
            Response::Decision {
                accepted,
                clause,
                diagnostics,
                ..
            } => {
                assert!(!accepted);
                assert_eq!(clause.as_deref(), Some("static analysis (pre-admission)"));
                assert!(
                    diagnostics.iter().any(|d| d
                        .get("code")
                        .and_then(rota_obs::Json::as_str)
                        == Some("R0006")),
                    "{bounced:?}"
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(journal.len(), 0, "the policy was never consulted");
        assert_eq!(
            registry
                .snapshot()
                .counter("server.shard.lint_rejects{shard=0}"),
            Some(1)
        );
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn injected_panic_restarts_worker_and_keeps_state() {
        use crate::fault::{FaultInjector, FaultPlan};

        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let faults = Arc::new(FaultInjector::new(
            FaultPlan {
                panic_nth: Some(2),
                ..FaultPlan::default()
            },
            &registry,
        ));
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 1, 8, DEDUP_CAPACITY, &registry, &journal, Some(faults));
        let timeout = Duration::from_secs(5);
        // First admit fills the shard's slice partially and succeeds.
        let first = pool.admit(request_at("p1", "l0", 1, 16), timeout);
        assert!(matches!(first, Response::Decision { accepted: true, .. }), "{first:?}");
        // Second admit trips the drill: the worker panics with our
        // request in hand, so we get the honest `overloaded` bounce.
        let bounced = pool.admit(request_at("p2", "l0", 1, 16), timeout);
        assert!(matches!(bounced, Response::Overloaded { shard: 0 }), "{bounced:?}");
        // The worker restarted with its controller intact: the retry is
        // decided normally, and the first verdict is still cached.
        let retried = pool.admit(request_at("p2", "l0", 1, 16), timeout);
        assert!(matches!(retried, Response::Decision { .. }), "{retried:?}");
        let replay = pool.admit(request_at("p1", "l0", 1, 16), timeout);
        assert_eq!(replay, first, "dedup cache survived the restart");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.shard.restarts{shard=0}"), Some(1));
        assert_eq!(snap.counter("server.faults.panic"), Some(1));
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn decision_cache_evicts_lru_and_use_refreshes() {
        let resp = |shard: usize| Response::Overloaded { shard };
        let mut cache = DecisionCache::new(2);
        cache.insert("a".into(), 1, resp(1));
        cache.insert("b".into(), 2, resp(2));
        // A replay moves `a` to most-recently-used, so the next insert
        // evicts `b` instead.
        assert!(matches!(cache.lookup("a", 1), CacheLookup::Replay(_)));
        cache.insert("c".into(), 3, resp(3));
        assert!(matches!(cache.lookup("b", 2), CacheLookup::Miss));
        assert!(matches!(cache.lookup("a", 1), CacheLookup::Replay(_)));
        assert_eq!(cache.len(), 2);
        // Re-inserting an existing name refreshes it too: the later
        // insert of `d` evicts `c`, not the re-inserted `a`.
        cache.insert("a".into(), 9, resp(9));
        cache.insert("d".into(), 4, resp(4));
        assert!(matches!(cache.lookup("c", 3), CacheLookup::Miss));
        assert!(matches!(cache.lookup("a", 9), CacheLookup::Replay(_)));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn decision_cache_conflict_does_not_refresh() {
        let resp = |shard: usize| Response::Overloaded { shard };
        let mut cache = DecisionCache::new(2);
        cache.insert("a".into(), 1, resp(1));
        cache.insert("b".into(), 2, resp(2));
        // A conflicting submission must not keep the stale name pinned:
        // `a` stays least-recently-used and is the next eviction victim.
        assert!(matches!(cache.lookup("a", 99), CacheLookup::Conflict));
        cache.insert("c".into(), 3, resp(3));
        assert!(matches!(cache.lookup("a", 1), CacheLookup::Miss));
        assert!(matches!(cache.lookup("b", 2), CacheLookup::Replay(_)));
    }

    #[test]
    fn eviction_never_double_commits() {
        // Regression for the bounded cache: once an accepted name ages
        // out of the dedup cache, a verbatim resubmission is re-decided
        // — and must end in a graceful reject (its actors are still
        // committed), never in a second commit or a worker panic.
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) =
            ShardPool::spawn(RotaPolicy, &theta, 1, 8, 1, &registry, &journal, None);
        let timeout = Duration::from_secs(5);
        let first = pool.admit(request_at("a", "l0", 1, 16), timeout);
        assert!(matches!(first, Response::Decision { accepted: true, .. }), "{first:?}");
        // Capacity is 1: admitting `b` evicts `a` from the cache.
        let second = pool.admit(request_at("b", "l0", 1, 16), timeout);
        assert!(matches!(second, Response::Decision { accepted: true, .. }), "{second:?}");
        let resub = pool.admit(request_at("a", "l0", 1, 16), timeout);
        match &resub {
            Response::Decision {
                accepted, reason, ..
            } => {
                assert!(!accepted, "evicted resubmission must not double-commit");
                assert!(reason.contains("not installable"), "{reason}");
            }
            other => panic!("unexpected {other:?}"),
        }
        match pool.stats(timeout) {
            Response::Stats { stats, .. } => {
                assert_eq!(stats.accepted, 2, "`a` committed exactly once");
                assert_eq!(stats.rejected, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            registry
                .snapshot()
                .counter("server.shard.restarts{shard=0}")
                .unwrap_or(0),
            0,
            "the duplicate install is handled, not panicked on"
        );
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn two_phase_prepare_commit_abort_lifecycle() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) = ShardPool::spawn(
            RotaPolicy,
            &theta,
            1,
            8,
            DEDUP_CAPACITY,
            &registry,
            &journal,
            None,
        );
        let timeout = Duration::from_secs(5);
        let ttl = Duration::from_secs(30);
        let (epochs, basis) = pool.cluster_state(timeout).unwrap();
        assert_eq!(epochs, vec![0]);
        assert_eq!(basis, theta, "untouched node offers its full supply");
        // Prepare holds the supply tentatively and bumps the epoch.
        let prepared = pool.prepare(request_at("r1", "l0", 1, 16), &basis, &epochs, ttl, timeout);
        assert!(matches!(&prepared, Response::Prepared { name } if name == "r1"), "{prepared:?}");
        let (epochs2, basis2) = pool.cluster_state(timeout).unwrap();
        assert_eq!(epochs2, vec![1]);
        assert_ne!(basis2, theta, "the reservation is excluded from the snapshot");
        // A prepare against the stale basis is refused, not mis-decided.
        let stale = pool.prepare(request_at("r2", "l0", 1, 16), &basis, &epochs, ttl, timeout);
        match &stale {
            Response::Error { message } => assert!(message.contains("stale-epoch"), "{message}"),
            other => panic!("unexpected {other:?}"),
        }
        // Re-preparing the same name refreshes instead of double-holding.
        let again = pool.prepare(request_at("r1", "l0", 1, 16), &basis, &epochs, ttl, timeout);
        assert!(matches!(&again, Response::Prepared { name } if name == "r1"), "{again:?}");
        assert_eq!(pool.cluster_state(timeout).unwrap().0, vec![1], "no second install");
        // Commit is permanent and idempotent.
        pool.commit("r1", timeout).unwrap();
        pool.commit("r1", timeout).unwrap();
        // Abort of a fresh reservation releases its supply.
        let (epochs3, basis3) = pool.cluster_state(timeout).unwrap();
        let r2 = pool.prepare(request_at("r2", "l0", 1, 16), &basis3, &epochs3, ttl, timeout);
        assert!(matches!(r2, Response::Prepared { .. }), "{r2:?}");
        assert!(pool.abort("r2", timeout));
        assert!(!pool.abort("r2", timeout), "second abort finds nothing");
        assert_eq!(
            pool.cluster_state(timeout).unwrap().1,
            basis3,
            "abort restored the supply"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("server.twopc.prepared{shard=0}"), Some(2));
        assert_eq!(snap.counter("server.twopc.committed{shard=0}"), Some(1));
        assert_eq!(snap.counter("server.twopc.aborted{shard=0}"), Some(1));
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn expired_reservation_is_released_not_leaked() {
        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(64));
        let theta = theta_at(&["l0"], 4, 16);
        let (pool, handles) = ShardPool::spawn(
            RotaPolicy,
            &theta,
            1,
            8,
            DEDUP_CAPACITY,
            &registry,
            &journal,
            None,
        );
        let timeout = Duration::from_secs(5);
        let (epochs, basis) = pool.cluster_state(timeout).unwrap();
        let prepared = pool.prepare(
            request_at("t1", "l0", 1, 16),
            &basis,
            &epochs,
            Duration::from_millis(30),
            timeout,
        );
        assert!(matches!(prepared, Response::Prepared { .. }), "{prepared:?}");
        std::thread::sleep(Duration::from_millis(60));
        // The lazy sweep runs at the head of the next message: the
        // commit arrives too late and the hold is gone.
        let err = pool.commit("t1", timeout).unwrap_err();
        assert!(err.contains("expired or never prepared"), "{err}");
        assert_eq!(
            pool.cluster_state(timeout).unwrap().1,
            theta,
            "expiry returned the supply — nothing leaked"
        );
        assert_eq!(
            registry.snapshot().counter("server.twopc.expired{shard=0}"),
            Some(1)
        );
        drop(pool);
        for handle in handles {
            handle.join().unwrap();
        }
    }
}
