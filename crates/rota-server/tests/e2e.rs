//! End-to-end tests against a live server on an ephemeral port.
//!
//! These talk raw TCP (no rota-client, which would be a dependency
//! cycle) so they also pin down the wire format itself: one JSON
//! document per line, `"ok"` flag on every response.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rota_actor::{ActionKind, ActorComputation, DistributedComputation, Granularity, TableCostModel};
use rota_admission::{
    AdmissionController, AdmissionPolicy, AdmissionRequest, Decision, RotaPolicy,
};
use rota_interval::TimePoint;
use rota_logic::State;
use rota_obs::Json;
use rota_server::spec::computation_to_json;
use rota_server::{Server, ServerConfig};
use rota_workload::{base_resources, generate_job, JobShape, WorkloadConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request/response exchange over an existing connection.
fn roundtrip(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Json {
    stream
        .write_all(format!("{line}\n").as_bytes())
        .expect("write frame");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read frame");
    assert!(response.ends_with('\n'), "unterminated frame: {response:?}");
    Json::parse(response.trim_end()).expect("response is valid JSON")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn admit_line(computation: &rota_actor::DistributedComputation) -> String {
    let mut pairs = vec![
        ("op".to_string(), Json::Str("admit".into())),
        ("granularity".to_string(), Json::Str("maximal-run".into())),
    ];
    pairs.push(("computation".to_string(), computation_to_json(computation)));
    Json::Obj(pairs).to_string()
}

/// Chain-shaped (single-location) workload: each job touches exactly
/// one location, so a sharded server and a monolithic controller see
/// the same per-location resource state and must agree on every
/// verdict.
fn chain_workload() -> WorkloadConfig {
    WorkloadConfig::new(42)
        .with_nodes(4)
        .with_horizon(64)
        .with_shape(JobShape::Chain { evals: 3 })
        .with_slack(3.0)
}

#[test]
fn server_decisions_match_in_process_controller() {
    let workload = chain_workload();
    let theta = base_resources(&workload);
    let server = Server::spawn(ServerConfig::ephemeral(), RotaPolicy, &theta)
        .expect("spawn server");
    let (mut stream, mut reader) = connect(server.local_addr());

    let mut reference =
        AdmissionController::new(RotaPolicy, theta, TimePoint::ZERO);
    let phi = TableCostModel::paper();
    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut agreements = 0usize;
    let mut accepted = 0usize;
    for i in 0..60 {
        let arrival = rng.gen_range(0..workload.horizon / 2);
        let job = generate_job(&workload, &mut rng, &format!("e2e{i}"), arrival);
        let expected = reference
            .submit(&AdmissionRequest::price(
                job.clone(),
                &phi,
                Granularity::MaximalRun,
            ))
            .is_accept();
        let response = roundtrip(&mut stream, &mut reader, &admit_line(&job));
        assert_eq!(
            response.get("op").and_then(Json::as_str),
            Some("decision"),
            "unexpected response: {response}"
        );
        let got = response
            .get("accepted")
            .and_then(Json::as_bool)
            .expect("decision has accepted flag");
        assert_eq!(
            got, expected,
            "server and in-process controller disagree on job {i}: {response}"
        );
        agreements += 1;
        accepted += usize::from(got);
    }
    assert_eq!(agreements, 60);
    // The workload must actually exercise both verdicts for the
    // comparison to mean anything.
    assert!(accepted > 0, "no job was admitted");
    assert!(accepted < 60, "no job was refused");
    server.shutdown();
}

#[test]
fn lint_erroring_spec_is_rejected_before_policy() {
    let server = Server::spawn(
        ServerConfig::ephemeral(),
        RotaPolicy,
        &base_resources(&chain_workload()),
    )
    .expect("spawn server");
    let (mut stream, mut reader) = connect(server.local_addr());

    // An actor at a location the server has no supply for: the
    // pre-admission analyzer flags R0006 and the request never
    // reaches the policy.
    let job = DistributedComputation::single(
        "ghost-job",
        ActorComputation::new("a", "ghost-location").then(ActionKind::evaluate()),
        TimePoint::ZERO,
        TimePoint::new(32),
    )
    .expect("valid computation");
    let response = roundtrip(&mut stream, &mut reader, &admit_line(&job));
    assert_eq!(response.get("op").and_then(Json::as_str), Some("decision"));
    assert_eq!(
        response.get("accepted").and_then(Json::as_bool),
        Some(false)
    );
    let clause = response
        .get("clause")
        .and_then(Json::as_str)
        .unwrap_or_default();
    assert!(clause.contains("static analysis"), "clause: {clause}");
    let diagnostics = response
        .get("diagnostics")
        .and_then(Json::as_array)
        .expect("lint rejection carries structured diagnostics");
    assert!(
        diagnostics
            .iter()
            .any(|d| d.get("code").and_then(Json::as_str) == Some("R0006")),
        "expected an R0006 diagnostic: {response}"
    );
    // The policy was never consulted: the decision journal stayed
    // empty and the lint counter recorded the bounce.
    assert!(server.journal().is_empty());
    let snapshot = server.registry().snapshot();
    let linted: u64 = (0..16)
        .filter_map(|s| snapshot.counter(&format!("server.shard.lint_rejects{{shard={s}}}")))
        .sum();
    assert_eq!(linted, 1);
    server.shutdown();
}

#[test]
fn malformed_frames_get_error_and_connection_survives() {
    let server = Server::spawn(
        ServerConfig::ephemeral(),
        RotaPolicy,
        &base_resources(&chain_workload()),
    )
    .expect("spawn server");
    let (mut stream, mut reader) = connect(server.local_addr());
    for bad in [
        "this is not json",
        "{\"op\":\"no-such-op\"}",
        "{\"op\":\"admit\"}",
        "[1,2,3]",
        "{\"op\":\"admit\",\"granularity\":\"maximal-run\",\"computation\":{\"name\":1}}",
    ] {
        let response = roundtrip(&mut stream, &mut reader, bad);
        assert_eq!(
            response.get("op").and_then(Json::as_str),
            Some("error"),
            "expected error for {bad:?}, got {response}"
        );
        assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    }
    // The connection is still usable after every malformed frame.
    let pong = roundtrip(&mut stream, &mut reader, "{\"op\":\"ping\"}");
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
    let malformed = server
        .registry()
        .snapshot()
        .counter("server.frames.malformed")
        .unwrap_or(0);
    assert_eq!(malformed, 5);
    server.shutdown();
}

#[test]
fn oversized_frames_are_refused_at_the_limit() {
    let config = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::ephemeral()
    };
    let server = Server::spawn(config, RotaPolicy, &base_resources(&chain_workload()))
        .expect("spawn server");
    let (mut stream, mut reader) = connect(server.local_addr());
    // 64 KiB of syntactically valid JSON in one frame: the server must
    // refuse it while reading, not after buffering all of it.
    let huge = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(64 * 1024));
    let response = roundtrip(&mut stream, &mut reader, &huge);
    assert_eq!(response.get("op").and_then(Json::as_str), Some("error"));
    let message = response
        .get("error")
        .and_then(Json::as_str)
        .expect("error carries message");
    assert!(message.contains("1024"), "unhelpful message: {message}");
    // The server hangs up after an oversized frame (the rest of the
    // stream cannot be re-synchronized): next read sees EOF.
    let mut rest = String::new();
    match reader.read_line(&mut rest) {
        Ok(n) => assert_eq!(n, 0, "connection should be closed, got {rest:?}"),
        // A reset is also a legitimate "hung up": the server closed
        // with part of the oversized frame still unread.
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset),
    }
    server.shutdown();
}

/// A policy that takes its time: lets tests fill the shard queue
/// deterministically to force `overloaded` responses.
#[derive(Clone)]
struct SlowPolicy {
    delay: Duration,
}

impl AdmissionPolicy for SlowPolicy {
    fn name(&self) -> &'static str {
        "slow"
    }

    fn decide(&self, state: &State, request: &AdmissionRequest) -> Decision {
        std::thread::sleep(self.delay);
        RotaPolicy.decide(state, request)
    }
}

#[test]
fn overload_answers_explicit_backpressure() {
    let workload = chain_workload();
    let config = ServerConfig {
        shards: 1,
        queue_capacity: 1,
        ..ServerConfig::ephemeral()
    };
    let server = Server::spawn(
        config,
        SlowPolicy {
            delay: Duration::from_millis(60),
        },
        &base_resources(&workload),
    )
    .expect("spawn server");
    let addr = server.local_addr();

    // 8 concurrent one-shot clients against a single shard that can
    // hold one queued request while one is being (slowly) decided: at
    // least one must bounce with `overloaded`, and nobody may hang.
    let mut rng = StdRng::seed_from_u64(7);
    let jobs: Vec<_> = (0..8)
        .map(|i| generate_job(&workload, &mut rng, &format!("ov{i}"), 0))
        .collect();
    let mut handles = Vec::new();
    for job in jobs {
        handles.push(std::thread::spawn(move || {
            let (mut stream, mut reader) = connect(addr);
            let response = roundtrip(&mut stream, &mut reader, &admit_line(&job));
            response
                .get("op")
                .and_then(Json::as_str)
                .expect("op field")
                .to_string()
        }));
    }
    let mut decisions = 0usize;
    let mut overloaded = 0usize;
    for handle in handles {
        match handle.join().expect("client thread").as_str() {
            "decision" => decisions += 1,
            "overloaded" => overloaded += 1,
            other => panic!("unexpected op {other}"),
        }
    }
    assert_eq!(decisions + overloaded, 8);
    assert!(
        overloaded >= 1,
        "expected backpressure with queue capacity 1, got {decisions} decisions"
    );
    let bounced = server
        .registry()
        .snapshot()
        .counter("server.overloaded{shard=0}")
        .unwrap_or(0);
    assert_eq!(bounced as usize, overloaded);
    server.shutdown();
}

#[test]
fn protocol_shutdown_drains_and_stops_accepting() {
    let workload = chain_workload();
    let server = Server::spawn(
        ServerConfig::ephemeral(),
        RotaPolicy,
        &base_resources(&workload),
    )
    .expect("spawn server");
    let addr = server.local_addr();
    let (mut stream, mut reader) = connect(addr);

    let mut rng = StdRng::seed_from_u64(3);
    let job = generate_job(&workload, &mut rng, "pre", 0);
    let response = roundtrip(&mut stream, &mut reader, &admit_line(&job));
    assert_eq!(response.get("op").and_then(Json::as_str), Some("decision"));

    let bye = roundtrip(&mut stream, &mut reader, "{\"op\":\"shutdown\"}");
    assert_eq!(bye.get("op").and_then(Json::as_str), Some("bye"));
    // Joining must complete promptly: shard workers drain and exit.
    let started = Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        started.elapsed()
    );
    // The journal survived the drain and recorded the decision.
    assert!(!server.journal().is_empty());
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
        "listener should be gone after shutdown"
    );
}

#[test]
fn idle_connections_are_reaped() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::ephemeral()
    };
    let server = Server::spawn(config, RotaPolicy, &base_resources(&chain_workload()))
        .expect("spawn server");
    let (_stream, mut reader) = connect(server.local_addr());
    // Send nothing. Within the 10s read timeout the server must reap us:
    // an `error` frame mentioning idleness, then EOF.
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reap notice");
    let notice = Json::parse(line.trim_end()).expect("reap notice is JSON");
    assert_eq!(notice.get("op").and_then(Json::as_str), Some("error"), "notice: {notice}");
    let message = notice.get("error").and_then(Json::as_str).unwrap_or_default();
    assert!(message.contains("idle"), "unexpected notice: {notice}");
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);
    let reaped = server
        .registry()
        .snapshot()
        .counter("server.connections.idle_reaped")
        .unwrap_or(0);
    assert_eq!(reaped, 1);
    server.shutdown();
}
