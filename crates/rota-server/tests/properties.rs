//! Property-based tests for the wire protocol and spec codecs.
//!
//! Two families:
//!
//! 1. **Round-trips** — arbitrary computations, resource sets, requests
//!    and responses survive encode → decode unchanged. The JSON encoder
//!    must escape whatever the generators throw at it (quotes,
//!    backslashes, control characters, non-ASCII) and the decoder must
//!    reconstruct the exact document.
//! 2. **Robustness** — arbitrary byte-level mutations (bit flips,
//!    truncations) of valid frames may be rejected with a protocol
//!    error but must never panic the parser or the framing layer. This
//!    is the guarantee the chaos layer's `truncate_p`/`corrupt_p`
//!    faults lean on: a corrupted frame degrades to an `error`
//!    response, not a crashed connection thread.

use proptest::prelude::*;

use rota_actor::{ActionKind, ActorComputation, ActorName, DistributedComputation};
use rota_interval::{TimeInterval, TimePoint};
use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};
use rota_server::protocol::{read_frame, Request, Response};
use rota_server::spec::{
    computation_to_json, resource_set, resource_set_to_json, resources_from_json,
    ComputationSpec,
};

// ---------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------

/// Strings that stress the JSON escaper: quotes, backslashes, control
/// characters, tabs/newlines, and multi-byte UTF-8.
const ALPHABET: &[char] = &[
    'a', 'Z', '7', ' ', '_', '"', '\\', '/', '\n', '\r', '\t', '\u{1}', '\u{1f}', 'λ', 'Ω',
    '→', '🦀',
];

fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec((0usize..ALPHABET.len()).prop_map(|i| ALPHABET[i]), 0..12)
        .prop_map(|chars| chars.into_iter().collect())
}

fn arb_opt_string() -> impl Strategy<Value = Option<String>> {
    prop_oneof![
        Just(None),
        arb_string().prop_map(Some),
    ]
}

fn loc(i: u8) -> Location {
    Location::new(format!("l{i}"))
}

fn arb_action() -> impl Strategy<Value = ActionKind> {
    prop_oneof![
        Just(ActionKind::evaluate()),
        (1u64..9).prop_map(ActionKind::evaluate_units),
        ((0u8..4), (0u8..4), 1u64..5).prop_map(|(peer, node, size)| ActionKind::Send {
            to: ActorName::new(format!("peer{peer}")),
            dest: loc(node),
            size,
        }),
        (0u8..4).prop_map(|c| ActionKind::create(format!("child{c}"))),
        Just(ActionKind::Ready),
        (0u8..4).prop_map(|d| ActionKind::migrate(loc(d))),
    ]
}

/// A well-formed distributed computation: 1–3 actors, each with 0–5
/// actions, a window with `start < deadline`.
fn arb_computation() -> impl Strategy<Value = DistributedComputation> {
    (
        proptest::collection::vec(
            (proptest::collection::vec(arb_action(), 0..6), 0u8..4),
            1..4,
        ),
        0u64..16,
        1u64..32,
    )
        .prop_map(|(actor_specs, start, duration)| {
            let actors = actor_specs
                .into_iter()
                .enumerate()
                .map(|(i, (actions, origin))| {
                    let mut gamma =
                        ActorComputation::new(format!("a{i}"), format!("l{origin}"));
                    for action in actions {
                        gamma = gamma.then(action);
                    }
                    gamma
                })
                .collect();
            DistributedComputation::new(
                "prop-job",
                actors,
                TimePoint::new(start),
                TimePoint::new(start + duration),
            )
            .expect("start < deadline by construction")
        })
}

/// A resource set whose terms can never collide: term `i` lives at its
/// own location `l{i}` (or link `l{i} → l{i+1}`), so insertion always
/// succeeds regardless of the drawn kinds and windows.
fn arb_resource_set() -> impl Strategy<Value = ResourceSet> {
    proptest::collection::vec((0u8..3, 1u64..9, 0u64..10, 1u64..24), 0..6).prop_map(|terms| {
        terms
            .into_iter()
            .enumerate()
            .map(|(i, (kind, rate, start, len))| {
                let i = i as u8;
                let located = match kind {
                    0 => LocatedType::cpu(loc(i)),
                    1 => LocatedType::memory(loc(i)),
                    _ => LocatedType::network(loc(i), loc(i + 1)),
                };
                let window = TimeInterval::from_ticks(start, start + len)
                    .expect("len >= 1 by construction");
                ResourceTerm::new(Rate::new(rate), window, located)
            })
            .collect::<ResourceSet>()
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Pong),
        Just(Response::Bye),
        (0u64..10_000).prop_map(|terms| Response::Offered { terms }),
        (0usize..64).prop_map(|shard| Response::Overloaded { shard }),
        arb_string().prop_map(|message| Response::Error { message }),
        (
            arb_string(),
            0u8..2,
            0usize..16,
            arb_string(),
            arb_opt_string(),
            arb_opt_string(),
        )
            .prop_map(|(computation, accepted, shard, reason, violated_term, clause)| {
                Response::Decision {
                    computation,
                    accepted: accepted == 1,
                    shard,
                    reason,
                    violated_term,
                    clause,
                    diagnostics: Vec::new(),
                }
            }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Shutdown),
        arb_resource_set().prop_map(|theta| {
            let doc = resource_set_to_json(&theta);
            let resources = resources_from_json(doc.as_array().expect("sets encode as arrays"))
                .expect("round-trip of a valid set");
            Request::Offer {
                resources,
                forwarded: false,
            }
        }),
        (arb_computation(), 0u8..2).prop_map(|(lambda, g)| Request::Admit {
            computation: ComputationSpec::from_json(&computation_to_json(&lambda))
                .expect("computation_to_json emits valid specs"),
            granularity: if g == 0 {
                rota_actor::Granularity::PerAction
            } else {
                rota_actor::Granularity::MaximalRun
            },
            forwarded: false,
        }),
    ]
}

// ---------------------------------------------------------------------
// round-trips
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `computation_to_json → ComputationSpec::from_json → build →
    /// computation_to_json` is the identity on the JSON document.
    #[test]
    fn computations_round_trip_through_spec_json(lambda in arb_computation()) {
        let doc = computation_to_json(&lambda);
        let spec = ComputationSpec::from_json(&doc).expect("encoder output parses");
        let rebuilt = spec.build().expect("parsed spec rebuilds");
        prop_assert_eq!(doc.to_string(), computation_to_json(&rebuilt).to_string());
    }

    /// Resource sets survive encode → parse → rebuild byte-identically.
    #[test]
    fn resource_sets_round_trip_through_spec_json(theta in arb_resource_set()) {
        let doc = resource_set_to_json(&theta);
        let specs = resources_from_json(doc.as_array().expect("array encoding"))
            .expect("encoder output parses");
        let rebuilt = resource_set(&specs).expect("parsed terms form a set");
        prop_assert_eq!(doc.to_string(), resource_set_to_json(&rebuilt).to_string());
    }

    /// Responses — including reasons full of quotes, control characters
    /// and non-ASCII — decode back to an equal value.
    #[test]
    fn responses_round_trip_through_frames(response in arb_response()) {
        let line = response.to_json().to_string();
        let decoded = Response::from_line(&line).expect("encoder output parses");
        prop_assert_eq!(response, decoded);
    }

    /// Requests re-encode to the identical frame after one decode.
    #[test]
    fn requests_round_trip_through_frames(request in arb_request()) {
        let line = request.to_json().to_string();
        let decoded = Request::from_line(&line).expect("encoder output parses");
        prop_assert_eq!(line, decoded.to_json().to_string());
    }
}

// ---------------------------------------------------------------------
// robustness: mutated frames never panic
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flip up to four bytes of a valid frame and truncate it at an
    /// arbitrary point: both parsers must return (Ok or Err), never
    /// panic — exactly what the chaos layer's wire faults rely on.
    #[test]
    fn mutated_frames_never_panic_the_parsers(
        response in arb_response(),
        flips in proptest::collection::vec((0usize..4096, 0u16..256), 1..5),
        cut in 0usize..4096,
    ) {
        let mut bytes = response.to_json().to_string().into_bytes();
        for (position, value) in flips {
            if bytes.is_empty() {
                break;
            }
            let index = position % bytes.len();
            bytes[index] = value as u8;
        }
        if !bytes.is_empty() {
            bytes.truncate(1 + cut % bytes.len());
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = Response::from_line(&text);
        let _ = Request::from_line(&text);
    }

    /// The framing layer itself survives mutated byte streams: it reads
    /// a line or reports a frame error, and it enforces the size cap
    /// without buffering past it.
    #[test]
    fn mutated_streams_never_panic_read_frame(
        request in arb_request(),
        flips in proptest::collection::vec((0usize..4096, 0u16..256), 1..5),
        cap in 8usize..128,
    ) {
        let mut bytes = request.to_json().to_string().into_bytes();
        for (position, value) in flips {
            let index = position % bytes.len();
            bytes[index] = value as u8;
        }
        bytes.push(b'\n');
        let mut cursor = std::io::Cursor::new(bytes.clone());
        let _ = read_frame(&mut cursor, cap);
        let mut cursor = std::io::Cursor::new(bytes);
        let _ = read_frame(&mut cursor, rota_server::MAX_FRAME_BYTES);
    }
}
