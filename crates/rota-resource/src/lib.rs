//! Resource representation for ROTA — resource terms and sets over time
//! and space (Section III of the paper).
//!
//! ROTA reifies computational resources as **resource terms** `[r]^τ_ξ`: a
//! rate of availability `r`, a time interval `τ` ([`rota_interval`]), and a
//! **located type** `ξ` naming what the resource is and where it resides —
//! `⟨cpu, l₁⟩` for processor capacity at node `l₁`, `⟨network, l₁→l₂⟩` for
//! a directed communication channel.
//!
//! * [`Location`], [`NodeResourceKind`], [`LocatedType`] — the `ξ` space.
//! * [`Rate`], [`Quantity`] — units/tick and absolute units, with checked
//!   arithmetic (negative resource is unrepresentable, per the paper).
//! * [`ResourceTerm`] — the atom `[r]^τ_ξ`, with the paper's dominance
//!   comparison and term subtraction.
//! * [`ResourceProfile`] — piecewise-constant availability: the fixpoint
//!   of the paper's simplification rule for one located type.
//! * [`ResourceSet`] — `Θ`: many located types, union / relative
//!   complement / windowed queries; resources joining and leaving an open
//!   system are unions and complements on `Θ`.
//!
//! # The paper's worked examples
//!
//! ```
//! use rota_interval::TimeInterval;
//! use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};
//!
//! let cpu_l1 = LocatedType::cpu(Location::new("l1"));
//! let iv = |s, e| TimeInterval::from_ticks(s, e).unwrap();
//! let t = |r, s, e| ResourceTerm::new(Rate::new(r), iv(s, e), cpu_l1.clone());
//!
//! // [5]^(0,3) ∪ [5]^(0,5) = [10]^(0,3) ∪ [5]^(3,5)
//! let theta = ResourceSet::from_terms([t(5, 0, 3), t(5, 0, 5)])?;
//! assert_eq!(theta.to_terms(), vec![t(10, 0, 3), t(5, 3, 5)]);
//!
//! // [5]^(0,3) \ [3]^(1,2) = [5]^(0,1) ∪ [2]^(1,2) ∪ [5]^(2,3)
//! let rest = ResourceSet::from_terms([t(5, 0, 3)])?
//!     .relative_complement(&ResourceSet::from_terms([t(3, 1, 2)])?)?;
//! assert_eq!(rest.to_terms(), vec![t(5, 0, 1), t(2, 1, 2), t(5, 2, 3)]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod located;
mod parse;
mod profile;
mod rate;
mod set;
mod term;

pub use located::{LocatedType, Location, NodeResourceKind};
pub use parse::ParseTermError;
pub use profile::{InsufficientRateError, ResourceProfile};
pub use rate::{OverflowError, Quantity, Rate};
pub use set::{ResourceSet, ResourceSetError};
pub use term::{NotDominatedError, ResourceTerm};
