//! Text parsing for located types and resource terms.
//!
//! A compact ASCII notation mirroring the paper's `[r]^τ_ξ`:
//!
//! ```text
//! [5]^(0,3)_cpu@l1            CPU at l1, rate 5 over (0,3)
//! [4]^(0,20)_network@l1->l2   directed link l1 → l2
//! [2]^(1,9)_memory@l3
//! [1]^(0,2)_gpu@l1            any other word is a custom node kind
//! ```
//!
//! [`LocatedType`] accepts the `kind@location[->location]` fragment on
//! its own.

use core::fmt;
use core::str::FromStr;

use rota_interval::TimeInterval;

use crate::located::{LocatedType, Location, NodeResourceKind};
use crate::rate::Rate;
use crate::term::ResourceTerm;

/// Error from parsing the term/type notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTermError {
    message: String,
}

impl ParseTermError {
    fn new(message: impl Into<String>) -> Self {
        ParseTermError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTermError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot parse resource notation: {}", self.message)
    }
}

impl std::error::Error for ParseTermError {}

impl FromStr for LocatedType {
    type Err = ParseTermError;

    /// Parses `kind@location` or `network@from->to`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTermError`] for missing separators, empty names, or
    /// a destination on a non-network kind.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (kind, rest) = s
            .split_once('@')
            .ok_or_else(|| ParseTermError::new(format!("missing `@` in `{s}`")))?;
        let kind = kind.trim();
        if kind.is_empty() {
            return Err(ParseTermError::new("empty resource kind"));
        }
        if let Some((from, to)) = rest.split_once("->") {
            if kind != "network" && kind != "net" {
                return Err(ParseTermError::new(format!(
                    "`{kind}` cannot have a destination; only network@a->b"
                )));
            }
            let (from, to) = (from.trim(), to.trim());
            if from.is_empty() || to.is_empty() {
                return Err(ParseTermError::new("empty link endpoint"));
            }
            return Ok(LocatedType::network(Location::new(from), Location::new(to)));
        }
        let location = rest.trim();
        if location.is_empty() {
            return Err(ParseTermError::new("empty location"));
        }
        let located = match kind {
            "cpu" => LocatedType::cpu(Location::new(location)),
            "memory" | "mem" => LocatedType::memory(Location::new(location)),
            "disk" => LocatedType::Node {
                kind: NodeResourceKind::Disk,
                location: Location::new(location),
            },
            "network" | "net" => {
                return Err(ParseTermError::new(
                    "network types need a destination: network@a->b",
                ))
            }
            custom => LocatedType::Node {
                kind: NodeResourceKind::custom(custom),
                location: Location::new(location),
            },
        };
        Ok(located)
    }
}

impl FromStr for ResourceTerm {
    type Err = ParseTermError;

    /// Parses `[rate]^(start,end)_kind@location[->location]`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTermError`] describing the malformed fragment.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let rest = s
            .strip_prefix('[')
            .ok_or_else(|| ParseTermError::new(format!("expected `[rate]…`, got `{s}`")))?;
        let (rate, rest) = rest
            .split_once(']')
            .ok_or_else(|| ParseTermError::new("unterminated `[rate]`"))?;
        let rate: u64 = rate
            .trim()
            .parse()
            .map_err(|_| ParseTermError::new(format!("`{rate}` is not a rate")))?;
        let rest = rest
            .strip_prefix("^(")
            .ok_or_else(|| ParseTermError::new("expected `^(start,end)` after the rate"))?;
        let (interval, rest) = rest
            .split_once(')')
            .ok_or_else(|| ParseTermError::new("unterminated `(start,end)`"))?;
        let (start, end) = interval
            .split_once(',')
            .ok_or_else(|| ParseTermError::new("expected `start,end`"))?;
        let start: u64 = start
            .trim()
            .parse()
            .map_err(|_| ParseTermError::new(format!("`{start}` is not a tick")))?;
        let end: u64 = end
            .trim()
            .parse()
            .map_err(|_| ParseTermError::new(format!("`{end}` is not a tick")))?;
        let interval = TimeInterval::from_ticks(start, end)
            .map_err(|e| ParseTermError::new(e.to_string()))?;
        let located = rest
            .strip_prefix('_')
            .ok_or_else(|| ParseTermError::new("expected `_kind@location`"))?
            .parse::<LocatedType>()?;
        Ok(ResourceTerm::new(Rate::new(rate), interval, located))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_node_and_link_types() {
        let lt: LocatedType = "cpu@l1".parse().unwrap();
        assert_eq!(lt, LocatedType::cpu(Location::new("l1")));
        let lt: LocatedType = "memory@l3".parse().unwrap();
        assert_eq!(lt, LocatedType::memory(Location::new("l3")));
        let lt: LocatedType = "disk@l0".parse().unwrap();
        assert!(matches!(
            lt,
            LocatedType::Node {
                kind: NodeResourceKind::Disk,
                ..
            }
        ));
        let lt: LocatedType = "network@l1->l2".parse().unwrap();
        assert_eq!(
            lt,
            LocatedType::network(Location::new("l1"), Location::new("l2"))
        );
        let lt: LocatedType = "gpu@l1".parse().unwrap();
        assert_eq!(lt.to_string(), "⟨gpu, l1⟩");
        // whitespace tolerated
        let lt: LocatedType = "  net@a -> b ".parse().unwrap();
        assert_eq!(
            lt,
            LocatedType::network(Location::new("a"), Location::new("b"))
        );
    }

    #[test]
    fn parses_full_terms() {
        let t: ResourceTerm = "[5]^(0,3)_cpu@l1".parse().unwrap();
        assert_eq!(t.rate(), Rate::new(5));
        assert_eq!(t.interval(), TimeInterval::from_ticks(0, 3).unwrap());
        assert_eq!(t.located(), &LocatedType::cpu(Location::new("l1")));
        let t: ResourceTerm = "[4]^(0,20)_network@l1->l2".parse().unwrap();
        assert_eq!(
            t.located(),
            &LocatedType::network(Location::new("l1"), Location::new("l2"))
        );
        // whitespace tolerated
        let t: ResourceTerm = " [ 2 ]^( 1 , 9 )_mem@l3 ".parse().unwrap();
        assert_eq!(t.rate(), Rate::new(2));
    }

    #[test]
    fn rejects_malformed_terms() {
        for bad in [
            "",
            "5^(0,3)_cpu@l1",
            "[x]^(0,3)_cpu@l1",
            "[5](0,3)_cpu@l1",
            "[5]^(0 3)_cpu@l1",
            "[5]^(3,3)_cpu@l1",
            "[5]^(0,3)cpu@l1",
            "[5]^(0,3)_cpu",
            "[5]^(0,3)_@l1",
            "[5]^(0,3)_cpu@",
            "[5]^(0,3)_cpu@l1->l2",
            "[5]^(0,3)_network@l1",
            "[5]^(0,3",
        ] {
            assert!(
                bad.parse::<ResourceTerm>().is_err(),
                "`{bad}` should not parse"
            );
        }
        assert!("network@a->".parse::<LocatedType>().is_err());
    }

    /// Display → parse roundtrip for node types (link arrow differs from
    /// the pretty Unicode form, so links roundtrip via the ASCII input
    /// notation only).
    #[test]
    fn ascii_notation_roundtrips_semantically() {
        let t: ResourceTerm = "[7]^(2,9)_cpu@node-4".parse().unwrap();
        let reparsed: ResourceTerm = format!(
            "[{}]^({},{})_cpu@node-4",
            t.rate().units_per_tick(),
            t.interval().start().ticks(),
            t.interval().end().ticks()
        )
        .parse()
        .unwrap();
        assert_eq!(t, reparsed);
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = "[5]^(0,3)_network@l1".parse::<ResourceTerm>().unwrap_err();
        assert!(e.to_string().contains("destination"));
        let e = "[q]^(0,3)_cpu@l1".parse::<ResourceTerm>().unwrap_err();
        assert!(e.to_string().contains("not a rate"));
    }
}
