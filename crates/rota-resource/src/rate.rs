//! Rates and quantities of resource, with checked arithmetic.
//!
//! A resource term `[r]^τ_ξ` carries a **rate** `r` — units of resource per
//! tick. Integrating a rate over a time interval yields a **quantity** —
//! the paper's footnote 1: "the product `r × τ` gives the total quantity of
//! the available resource over the course of time interval `τ`." The two
//! are deliberately distinct types: a demand of 8 CPU *units* is not a rate
//! of 8 units *per tick*.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

use rota_interval::TickDuration;

/// Error raised when a rate/quantity operation overflows `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverflowError;

impl fmt::Display for OverflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("resource arithmetic overflowed u64")
    }
}

impl std::error::Error for OverflowError {}

/// A rate of resource availability or consumption, in units per tick.
///
/// # Examples
///
/// ```
/// use rota_resource::Rate;
/// use rota_interval::TickDuration;
///
/// let r = Rate::new(5);
/// assert_eq!(r.over(TickDuration::new(3))?.units(), 15);
/// # Ok::<(), rota_resource::OverflowError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

impl Rate {
    /// The zero rate — a null resource term.
    pub const ZERO: Rate = Rate(0);

    /// Creates a rate of `units_per_tick`.
    #[inline]
    pub const fn new(units_per_tick: u64) -> Self {
        Rate(units_per_tick)
    }

    /// Units of resource made available per tick.
    #[inline]
    pub const fn units_per_tick(self) -> u64 {
        self.0
    }

    /// Whether this rate provides nothing.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Quantity delivered over `duration`: the paper's `r × τ` product.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the product exceeds `u64`.
    #[inline]
    pub fn over(self, duration: TickDuration) -> Result<Quantity, OverflowError> {
        self.0
            .checked_mul(duration.ticks())
            .map(Quantity)
            .ok_or(OverflowError)
    }

    /// Checked rate addition — aggregation of simultaneous same-type terms.
    #[inline]
    pub fn checked_add(self, other: Rate) -> Option<Rate> {
        self.0.checked_add(other.0).map(Rate)
    }

    /// Checked rate subtraction — the relative-complement rate `r₁ - r₂`.
    #[inline]
    pub fn checked_sub(self, other: Rate) -> Option<Rate> {
        self.0.checked_sub(other.0).map(Rate)
    }

    /// Saturating subtraction, clamping at zero.
    #[inline]
    pub fn saturating_sub(self, other: Rate) -> Rate {
        Rate(self.0.saturating_sub(other.0))
    }

    /// The smaller of two rates.
    #[inline]
    pub fn min(self, other: Rate) -> Rate {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/Δt", self.0)
    }
}

impl From<u64> for Rate {
    fn from(v: u64) -> Self {
        Rate(v)
    }
}

impl Add for Rate {
    type Output = Rate;
    /// # Panics
    /// Panics on overflow; use [`Rate::checked_add`] to handle it.
    fn add(self, other: Rate) -> Rate {
        self.checked_add(other).expect("Rate + Rate overflowed")
    }
}

impl AddAssign for Rate {
    fn add_assign(&mut self, other: Rate) {
        *self = *self + other;
    }
}

impl Sub for Rate {
    type Output = Rate;
    /// # Panics
    /// Panics on underflow — the paper: "resource terms cannot be
    /// negative". Use [`Rate::checked_sub`] or [`Rate::saturating_sub`].
    fn sub(self, other: Rate) -> Rate {
        self.checked_sub(other)
            .expect("Rate - Rate underflowed: negative resource terms are not meaningful")
    }
}

/// An absolute amount of resource — the `q` in a required amount `{q}_ξ`.
///
/// # Examples
///
/// ```
/// use rota_resource::Quantity;
///
/// let total: Quantity = [Quantity::new(4), Quantity::new(8)].into_iter().sum();
/// assert_eq!(total, Quantity::new(12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Quantity(u64);

impl Quantity {
    /// No resource at all.
    pub const ZERO: Quantity = Quantity(0);

    /// Creates a quantity of `units`.
    #[inline]
    pub const fn new(units: u64) -> Self {
        Quantity(units)
    }

    /// The number of units.
    #[inline]
    pub const fn units(self) -> u64 {
        self.0
    }

    /// Whether the quantity is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, other: Quantity) -> Option<Quantity> {
        self.0.checked_add(other.0).map(Quantity)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: Quantity) -> Option<Quantity> {
        self.0.checked_sub(other.0).map(Quantity)
    }

    /// Saturating subtraction, clamping at zero — used by the transition
    /// rules, where a final slice may overshoot the remaining demand.
    #[inline]
    pub fn saturating_sub(self, other: Quantity) -> Quantity {
        Quantity(self.0.saturating_sub(other.0))
    }

    /// The smaller of two quantities.
    #[inline]
    pub fn min(self, other: Quantity) -> Quantity {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Ticks needed to deliver this quantity at `rate`, rounding up; `None`
    /// for a zero rate (never delivers) unless the quantity is zero.
    pub fn ticks_at(self, rate: Rate) -> Option<TickDuration> {
        if self.0 == 0 {
            return Some(TickDuration::ZERO);
        }
        if rate.is_zero() {
            return None;
        }
        Some(TickDuration::new(self.0.div_ceil(rate.units_per_tick())))
    }
}

impl fmt::Display for Quantity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}u", self.0)
    }
}

impl From<u64> for Quantity {
    fn from(v: u64) -> Self {
        Quantity(v)
    }
}

impl Add for Quantity {
    type Output = Quantity;
    /// # Panics
    /// Panics on overflow; use [`Quantity::checked_add`] to handle it.
    fn add(self, other: Quantity) -> Quantity {
        self.checked_add(other)
            .expect("Quantity + Quantity overflowed")
    }
}

impl AddAssign for Quantity {
    fn add_assign(&mut self, other: Quantity) {
        *self = *self + other;
    }
}

impl Sub for Quantity {
    type Output = Quantity;
    /// # Panics
    /// Panics on underflow; use [`Quantity::checked_sub`] or
    /// [`Quantity::saturating_sub`].
    fn sub(self, other: Quantity) -> Quantity {
        self.checked_sub(other)
            .expect("Quantity - Quantity underflowed")
    }
}

impl Sum for Quantity {
    fn sum<I: Iterator<Item = Quantity>>(iter: I) -> Quantity {
        iter.fold(Quantity::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_times_duration_is_quantity() {
        assert_eq!(
            Rate::new(5).over(TickDuration::new(3)).unwrap(),
            Quantity::new(15)
        );
        assert_eq!(
            Rate::ZERO.over(TickDuration::new(100)).unwrap(),
            Quantity::ZERO
        );
        assert!(Rate::new(u64::MAX).over(TickDuration::new(2)).is_err());
    }

    #[test]
    fn rate_arithmetic() {
        assert_eq!(Rate::new(2) + Rate::new(3), Rate::new(5));
        assert_eq!(Rate::new(5) - Rate::new(3), Rate::new(2));
        assert_eq!(Rate::new(3).saturating_sub(Rate::new(5)), Rate::ZERO);
        assert_eq!(Rate::new(3).min(Rate::new(5)), Rate::new(3));
        assert_eq!(Rate::new(u64::MAX).checked_add(Rate::new(1)), None);
        assert_eq!(Rate::new(1).checked_sub(Rate::new(2)), None);
    }

    #[test]
    #[should_panic(expected = "negative resource terms")]
    fn negative_rate_panics() {
        let _ = Rate::new(1) - Rate::new(2);
    }

    #[test]
    fn quantity_arithmetic() {
        assert_eq!(Quantity::new(4) + Quantity::new(8), Quantity::new(12));
        assert_eq!(Quantity::new(8) - Quantity::new(3), Quantity::new(5));
        assert_eq!(
            Quantity::new(3).saturating_sub(Quantity::new(8)),
            Quantity::ZERO
        );
        let sum: Quantity = (1..=4u64).map(Quantity::new).sum();
        assert_eq!(sum, Quantity::new(10));
    }

    #[test]
    fn ticks_at_rounds_up() {
        assert_eq!(
            Quantity::new(10).ticks_at(Rate::new(4)),
            Some(TickDuration::new(3))
        );
        assert_eq!(
            Quantity::new(8).ticks_at(Rate::new(4)),
            Some(TickDuration::new(2))
        );
        assert_eq!(Quantity::ZERO.ticks_at(Rate::ZERO), Some(TickDuration::ZERO));
        assert_eq!(Quantity::new(1).ticks_at(Rate::ZERO), None);
    }

    #[test]
    fn displays() {
        assert_eq!(Rate::new(5).to_string(), "5/Δt");
        assert_eq!(Quantity::new(5).to_string(), "5u");
        assert_eq!(OverflowError.to_string(), "resource arithmetic overflowed u64");
    }
}
