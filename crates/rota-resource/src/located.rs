//! Located resource types — the `ξ` subscript of a resource term.
//!
//! The paper: "`ξ` denotes the located type of the specified resource,
//! which contains both the type of the resource and the location where the
//! resource is residing." Processor-like resources live at one node
//! (`⟨cpu, l₁⟩`); communication resources span a directed link
//! (`⟨network, l₁ → l₂⟩`).

use core::fmt;
use std::sync::Arc;

/// A node in the distributed system — the paper's `l₁`, `l₂`, ….
///
/// Locations are interned, cheaply cloneable name handles; equality and
/// ordering are by name.
///
/// # Examples
///
/// ```
/// use rota_resource::Location;
///
/// let l1 = Location::new("l1");
/// assert_eq!(l1.to_string(), "l1");
/// assert_eq!(l1, Location::new("l1"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location(Arc<str>);

impl Location {
    /// Creates a location with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Location(Arc::from(name.as_ref()))
    }

    /// The location's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Location {
    fn from(name: &str) -> Self {
        Location::new(name)
    }
}

impl From<String> for Location {
    fn from(name: String) -> Self {
        Location(Arc::from(name))
    }
}

/// The kind of a node-local computational resource.
///
/// The paper's examples use CPU; memory and disk are other node-local
/// kinds a deployment may meter, and [`NodeResourceKind::Custom`] covers
/// anything else (GPU slices, software license seats, …).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeResourceKind {
    /// Processor cycles — the paper's `cpu`.
    Cpu,
    /// Memory bandwidth/occupancy.
    Memory,
    /// Persistent storage bandwidth.
    Disk,
    /// Any other metered node-local resource, identified by name.
    Custom(Arc<str>),
}

impl NodeResourceKind {
    /// A custom kind with the given name.
    pub fn custom(name: impl AsRef<str>) -> Self {
        NodeResourceKind::Custom(Arc::from(name.as_ref()))
    }

    /// Canonical lowercase label (`cpu`, `memory`, `disk`, or the custom
    /// name).
    pub fn label(&self) -> &str {
        match self {
            NodeResourceKind::Cpu => "cpu",
            NodeResourceKind::Memory => "memory",
            NodeResourceKind::Disk => "disk",
            NodeResourceKind::Custom(name) => name,
        }
    }
}

impl fmt::Display for NodeResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A located resource type `ξ`: what the resource is *and* where it is.
///
/// Two located types are interchangeable for a computation exactly when
/// they are equal — a CPU tick at `l₁` is useless to an action that needs
/// one at `l₂`, and a link `l₁ → l₂` is distinct from `l₂ → l₁`.
///
/// # Examples
///
/// ```
/// use rota_resource::{Location, LocatedType};
///
/// let cpu = LocatedType::cpu(Location::new("l1"));
/// assert_eq!(cpu.to_string(), "⟨cpu, l1⟩");
///
/// let link = LocatedType::network(Location::new("l1"), Location::new("l2"));
/// assert_eq!(link.to_string(), "⟨network, l1→l2⟩");
/// assert_ne!(link, LocatedType::network(Location::new("l2"), Location::new("l1")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LocatedType {
    /// A node-local resource `⟨kind, location⟩`.
    Node {
        /// What is metered.
        kind: NodeResourceKind,
        /// Where it resides.
        location: Location,
    },
    /// A directed communication resource `⟨network, from → to⟩`.
    Link {
        /// Source node of the link.
        from: Location,
        /// Destination node of the link.
        to: Location,
    },
}

impl LocatedType {
    /// Convenience constructor for `⟨cpu, location⟩`.
    pub fn cpu(location: Location) -> Self {
        LocatedType::Node {
            kind: NodeResourceKind::Cpu,
            location,
        }
    }

    /// Convenience constructor for `⟨memory, location⟩`.
    pub fn memory(location: Location) -> Self {
        LocatedType::Node {
            kind: NodeResourceKind::Memory,
            location,
        }
    }

    /// Convenience constructor for `⟨network, from → to⟩`.
    pub fn network(from: Location, to: Location) -> Self {
        LocatedType::Link { from, to }
    }

    /// Whether this is a node-local (as opposed to link) type.
    pub fn is_node(&self) -> bool {
        matches!(self, LocatedType::Node { .. })
    }

    /// Whether this is a directed link type.
    pub fn is_link(&self) -> bool {
        matches!(self, LocatedType::Link { .. })
    }

    /// The locations this type touches: one for node types, two (source
    /// then destination) for links.
    pub fn locations(&self) -> Vec<&Location> {
        match self {
            LocatedType::Node { location, .. } => vec![location],
            LocatedType::Link { from, to } => vec![from, to],
        }
    }
}

impl fmt::Display for LocatedType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LocatedType::Node { kind, location } => write!(f, "⟨{kind}, {location}⟩"),
            LocatedType::Link { from, to } => write!(f, "⟨network, {from}→{to}⟩"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_identity_is_by_name() {
        assert_eq!(Location::new("a"), Location::from("a"));
        assert_ne!(Location::new("a"), Location::new("b"));
        assert_eq!(Location::from(String::from("x")).name(), "x");
    }

    #[test]
    fn node_kinds_label() {
        assert_eq!(NodeResourceKind::Cpu.label(), "cpu");
        assert_eq!(NodeResourceKind::Memory.label(), "memory");
        assert_eq!(NodeResourceKind::Disk.label(), "disk");
        assert_eq!(NodeResourceKind::custom("gpu").label(), "gpu");
        assert_eq!(NodeResourceKind::custom("gpu"), NodeResourceKind::custom("gpu"));
    }

    #[test]
    fn link_direction_matters() {
        let ab = LocatedType::network("a".into(), "b".into());
        let ba = LocatedType::network("b".into(), "a".into());
        assert_ne!(ab, ba);
        assert!(ab.is_link());
        assert!(!ab.is_node());
    }

    #[test]
    fn display_matches_paper_notation() {
        let cpu = LocatedType::cpu(Location::new("l1"));
        assert_eq!(cpu.to_string(), "⟨cpu, l1⟩");
        let net = LocatedType::network(Location::new("l1"), Location::new("l2"));
        assert_eq!(net.to_string(), "⟨network, l1→l2⟩");
    }

    #[test]
    fn locations_listed() {
        let l1 = Location::new("l1");
        let l2 = Location::new("l2");
        assert_eq!(LocatedType::cpu(l1.clone()).locations(), vec![&l1]);
        let link = LocatedType::network(l1.clone(), l2.clone());
        assert_eq!(link.locations(), vec![&l1, &l2]);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            LocatedType::network("b".into(), "a".into()),
            LocatedType::cpu("z".into()),
            LocatedType::memory("a".into()),
        ];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 3);
    }
}
