//! Piecewise-constant availability profiles — the normal form for all
//! same-located-type resource terms.
//!
//! The paper's simplification rule aggregates resource terms of identical
//! located type over the sub-intervals where they overlap:
//!
//! ```text
//! [r₁]^τ₁ ∪ [r₂]^τ₂ = { [r₁]^(τ₁\τ₂), [r₂]^(τ₂\τ₁), [r₁+r₂]^(τ₁∩τ₂) }
//! ```
//!
//! Applying that rule to a fixed point yields a **step function** from time
//! to rate. [`ResourceProfile`] stores exactly that step function in
//! canonical form, making simplification idempotent and all availability
//! queries O(log n) or a single sweep.

use core::fmt;

use rota_interval::{IntervalSet, TimeInterval, TimePoint};

use crate::rate::{OverflowError, Quantity, Rate};

/// A canonical piecewise-constant rate function for one located type.
///
/// Invariants (checked in tests): segments are sorted, pairwise disjoint,
/// carry non-zero rates, and no two *meeting* segments carry equal rates
/// (those are coalesced — the paper: "resource terms can reduce in number
/// if two identical located type resources with identical rates have time
/// intervals that meet").
///
/// # Examples
///
/// ```
/// use rota_interval::TimeInterval;
/// use rota_resource::{Rate, ResourceProfile};
///
/// // The paper's second worked example:
/// //   [5]^(0,3) ∪ [5]^(0,5) = { [10]^(0,3), [5]^(3,5) }
/// let mut p = ResourceProfile::new();
/// p.add(TimeInterval::from_ticks(0, 3)?, Rate::new(5))?;
/// p.add(TimeInterval::from_ticks(0, 5)?, Rate::new(5))?;
/// let segments: Vec<_> = p.segments().to_vec();
/// assert_eq!(segments, vec![
///     (TimeInterval::from_ticks(0, 3)?, Rate::new(10)),
///     (TimeInterval::from_ticks(3, 5)?, Rate::new(5)),
/// ]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ResourceProfile {
    segments: Vec<(TimeInterval, Rate)>,
}

/// Error from subtracting more than is available at some instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientRateError {
    at: TimePoint,
    available: Rate,
    demanded: Rate,
}

impl InsufficientRateError {
    /// The first instant at which availability falls short.
    pub fn at(&self) -> TimePoint {
        self.at
    }

    /// Rate available at that instant.
    pub fn available(&self) -> Rate {
        self.available
    }

    /// Rate demanded at that instant.
    pub fn demanded(&self) -> Rate {
        self.demanded
    }
}

impl fmt::Display for InsufficientRateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "insufficient rate at {}: available {}, demanded {}",
            self.at, self.available, self.demanded
        )
    }
}

impl std::error::Error for InsufficientRateError {}

impl ResourceProfile {
    /// The empty profile (rate 0 everywhere).
    pub fn new() -> Self {
        ResourceProfile {
            segments: Vec::new(),
        }
    }

    /// Builds a profile from one constant segment.
    ///
    /// # Errors
    ///
    /// Never fails for a single term; the `Result` mirrors
    /// [`add`](ResourceProfile::add) for composability.
    pub fn from_segment(interval: TimeInterval, rate: Rate) -> Result<Self, OverflowError> {
        let mut p = ResourceProfile::new();
        p.add(interval, rate)?;
        Ok(p)
    }

    /// Whether the profile is zero everywhere.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The canonical segments `(interval, rate)`, ascending, all rates
    /// non-zero.
    pub fn segments(&self) -> &[(TimeInterval, Rate)] {
        &self.segments
    }

    /// The rate available at tick `t`.
    pub fn rate_at(&self, t: TimePoint) -> Rate {
        match self
            .segments
            .binary_search_by(|(iv, _)| iv.start().cmp(&t))
        {
            Ok(idx) => self.segments[idx].1,
            Err(0) => Rate::ZERO,
            Err(idx) => {
                let (iv, r) = self.segments[idx - 1];
                if iv.contains_tick(t) {
                    r
                } else {
                    Rate::ZERO
                }
            }
        }
    }

    /// The minimum rate over every tick of `window` (zero if any gap).
    pub fn min_rate_over(&self, window: &TimeInterval) -> Rate {
        let mut min = Rate::new(u64::MAX);
        let mut covered_until = window.start();
        for (iv, r) in &self.segments {
            if iv.end() <= window.start() {
                continue;
            }
            if iv.start() >= window.end() {
                break;
            }
            if iv.start() > covered_until {
                return Rate::ZERO; // gap inside the window
            }
            min = min.min(*r);
            covered_until = iv.end();
            if covered_until >= window.end() {
                break;
            }
        }
        if covered_until < window.end() {
            return Rate::ZERO;
        }
        min
    }

    /// Total quantity deliverable over `window` — the integral of the rate
    /// function, i.e. the paper's `⋃ₛᵈ Θ` availability aggregate for this
    /// located type.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the integral exceeds `u64`.
    pub fn quantity_over(&self, window: &TimeInterval) -> Result<Quantity, OverflowError> {
        let mut total = Quantity::ZERO;
        for (iv, r) in &self.segments {
            if let Some(shared) = iv.intersect(window) {
                let part = r.over(shared.duration())?;
                total = total.checked_add(part).ok_or(OverflowError)?;
            }
        }
        Ok(total)
    }

    /// The set of ticks with non-zero availability.
    pub fn support(&self) -> IntervalSet {
        self.segments.iter().map(|(iv, _)| *iv).collect()
    }

    /// The last instant with any availability, or `None` when empty.
    pub fn horizon(&self) -> Option<TimePoint> {
        self.segments.last().map(|(iv, _)| iv.end())
    }

    /// Adds `rate` over `interval` (pointwise sum) — the simplification
    /// rule's aggregation step.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if a summed rate exceeds `u64`.
    pub fn add(&mut self, interval: TimeInterval, rate: Rate) -> Result<(), OverflowError> {
        if rate.is_zero() {
            return Ok(()); // null term
        }
        self.combine(interval, rate, |have, add| {
            have.checked_add(add).ok_or(OverflowError)
        })
    }

    /// Adds every segment of `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if a summed rate exceeds `u64`.
    pub fn add_profile(&mut self, other: &ResourceProfile) -> Result<(), OverflowError> {
        for (iv, r) in &other.segments {
            self.add(*iv, *r)?;
        }
        Ok(())
    }

    /// Subtracts `rate` over `interval` (pointwise), failing if
    /// availability would go negative anywhere — the paper: "resource
    /// terms cannot be negative."
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientRateError`] at the first shortfall instant;
    /// the profile is left unchanged on error.
    pub fn subtract(
        &mut self,
        interval: TimeInterval,
        rate: Rate,
    ) -> Result<(), InsufficientRateError> {
        if rate.is_zero() {
            return Ok(());
        }
        // Pre-check: the window must be fully covered with at least `rate`.
        let min = self.min_rate_over(&interval);
        if min < rate {
            // Locate the first shortfall tick for the error report.
            let mut at = interval.start();
            while interval.contains_tick(at) && self.rate_at(at) >= rate {
                at += rota_interval::TickDuration::DELTA;
            }
            return Err(InsufficientRateError {
                at,
                available: self.rate_at(at),
                demanded: rate,
            });
        }
        self.combine(interval, rate, |have, sub| {
            Ok::<_, OverflowError>(have.saturating_sub(sub))
        })
        .expect("subtraction cannot overflow");
        Ok(())
    }

    /// Subtracts an entire profile.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientRateError`] at the first shortfall; `self` may
    /// have had earlier segments subtracted already when that happens, so
    /// on error callers should treat `self` as poisoned (the set-level
    /// operation in [`crate::ResourceSet`] pre-checks to avoid this).
    pub fn subtract_profile(
        &mut self,
        other: &ResourceProfile,
    ) -> Result<(), InsufficientRateError> {
        for (iv, r) in &other.segments {
            self.subtract(*iv, *r)?;
        }
        Ok(())
    }

    /// Whether `self` pointwise dominates `other` (can supply at least
    /// `other`'s rate at every tick).
    pub fn dominates(&self, other: &ResourceProfile) -> bool {
        other
            .segments
            .iter()
            .all(|(iv, r)| self.min_rate_over(iv) >= *r)
    }

    /// Drops all availability before `t` — used when time advances and
    /// un-consumed resource expires (the paper's expiration rules).
    pub fn truncate_before(&mut self, t: TimePoint) {
        let mut out = Vec::with_capacity(self.segments.len());
        for (iv, r) in &self.segments {
            if iv.end() <= t {
                continue;
            }
            let start = iv.start().max(t);
            let trimmed = TimeInterval::new(start, iv.end()).expect("end > t and end > start");
            out.push((trimmed, *r));
        }
        self.segments = out;
    }

    /// Zeroes the profile over every tick covered by `ticks`, keeping the
    /// rest — the complement of [`clamp`](ResourceProfile::clamp) against
    /// an arbitrary tick set. Used to mark whole ticks as claimed: ROTA's
    /// transition rules deliver a located type's full tick to a single
    /// consumer, so a claimed tick offers nothing to anyone else even if
    /// extra rate later joins on it.
    #[must_use]
    pub fn exclude(&self, ticks: &IntervalSet) -> ResourceProfile {
        let mut segments = Vec::with_capacity(self.segments.len());
        for (iv, r) in &self.segments {
            let keep = IntervalSet::from_interval(*iv).difference(ticks);
            for span in keep.spans() {
                segments.push((*span, *r));
            }
        }
        ResourceProfile {
            segments: canonicalize(segments),
        }
    }

    /// Restricts the profile to `window`.
    #[must_use]
    pub fn clamp(&self, window: &TimeInterval) -> ResourceProfile {
        let segments = self
            .segments
            .iter()
            .filter_map(|(iv, r)| iv.intersect(window).map(|shared| (shared, *r)))
            .collect();
        ResourceProfile { segments }
    }

    /// Core sweep: rebuilds the segment list with `op(current, rate)`
    /// applied over `interval` and identity elsewhere, re-canonicalizing.
    fn combine<E>(
        &mut self,
        interval: TimeInterval,
        rate: Rate,
        op: impl Fn(Rate, Rate) -> Result<Rate, E>,
    ) -> Result<(), E> {
        // Collect boundary points: existing segment edges plus the new
        // interval's edges, then evaluate each elementary piece.
        let mut bounds: Vec<TimePoint> = Vec::with_capacity(self.segments.len() * 2 + 2);
        bounds.push(interval.start());
        bounds.push(interval.end());
        for (iv, _) in &self.segments {
            bounds.push(iv.start());
            bounds.push(iv.end());
        }
        bounds.sort_unstable();
        bounds.dedup();
        let mut pieces: Vec<(TimeInterval, Rate)> = Vec::with_capacity(bounds.len());
        for w in bounds.windows(2) {
            let piece = TimeInterval::new(w[0], w[1]).expect("deduped ascending bounds");
            let base = self.rate_at(piece.start());
            let value = if interval.contains_interval(&piece) {
                op(base, rate)?
            } else {
                base
            };
            if !value.is_zero() {
                pieces.push((piece, value));
            }
        }
        self.segments = canonicalize(pieces);
        Ok(())
    }
}

/// Merges meeting equal-rate segments; input must be sorted and disjoint.
fn canonicalize(pieces: Vec<(TimeInterval, Rate)>) -> Vec<(TimeInterval, Rate)> {
    let mut out: Vec<(TimeInterval, Rate)> = Vec::with_capacity(pieces.len());
    for (iv, r) in pieces {
        if let Some((last_iv, last_r)) = out.last_mut() {
            if *last_r == r && last_iv.meets(&iv) {
                *last_iv = last_iv.union_contiguous(&iv).expect("meets implies contiguous");
                continue;
            }
        }
        out.push((iv, r));
    }
    out
}

impl fmt::Display for ResourceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segments.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        for (iv, r) in &self.segments {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "[{}]^{}", r.units_per_tick(), iv)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: u64, e: u64) -> TimeInterval {
        TimeInterval::from_ticks(s, e).unwrap()
    }

    fn profile(parts: &[(u64, u64, u64)]) -> ResourceProfile {
        let mut p = ResourceProfile::new();
        for &(s, e, r) in parts {
            p.add(iv(s, e), Rate::new(r)).unwrap();
        }
        p
    }

    fn assert_canonical(p: &ResourceProfile) {
        for (iv, r) in p.segments() {
            assert!(!r.is_zero(), "zero-rate segment {iv}");
        }
        for w in p.segments().windows(2) {
            let ((a, ra), (b, rb)) = (w[0], w[1]);
            assert!(a.end() <= b.start(), "overlap {a} {b}");
            assert!(
                !(a.meets(&b) && ra == rb),
                "uncoalesced equal-rate meet {a} {b}"
            );
        }
    }

    #[test]
    fn paper_example_aggregation() {
        // [5]^(0,3) ∪ [5]^(0,5) = [10]^(0,3), [5]^(3,5)
        let p = profile(&[(0, 3, 5), (0, 5, 5)]);
        assert_eq!(
            p.segments(),
            &[(iv(0, 3), Rate::new(10)), (iv(3, 5), Rate::new(5))]
        );
        assert_canonical(&p);
    }

    #[test]
    fn meeting_equal_rates_coalesce() {
        let p = profile(&[(0, 3, 5), (3, 7, 5)]);
        assert_eq!(p.segments(), &[(iv(0, 7), Rate::new(5))]);
    }

    #[test]
    fn zero_rate_add_is_noop() {
        let mut p = profile(&[(0, 3, 5)]);
        p.add(iv(0, 10), Rate::ZERO).unwrap();
        assert_eq!(p, profile(&[(0, 3, 5)]));
    }

    #[test]
    fn rate_at_queries() {
        let p = profile(&[(0, 3, 5), (5, 8, 2)]);
        assert_eq!(p.rate_at(TimePoint::new(0)), Rate::new(5));
        assert_eq!(p.rate_at(TimePoint::new(2)), Rate::new(5));
        assert_eq!(p.rate_at(TimePoint::new(3)), Rate::ZERO);
        assert_eq!(p.rate_at(TimePoint::new(4)), Rate::ZERO);
        assert_eq!(p.rate_at(TimePoint::new(5)), Rate::new(2));
        assert_eq!(p.rate_at(TimePoint::new(7)), Rate::new(2));
        assert_eq!(p.rate_at(TimePoint::new(8)), Rate::ZERO);
    }

    #[test]
    fn min_rate_over_detects_gaps_and_minima() {
        let p = profile(&[(0, 3, 5), (3, 8, 2)]);
        assert_eq!(p.min_rate_over(&iv(0, 8)), Rate::new(2));
        assert_eq!(p.min_rate_over(&iv(0, 3)), Rate::new(5));
        assert_eq!(p.min_rate_over(&iv(0, 9)), Rate::ZERO); // runs past horizon
        let gappy = profile(&[(0, 2, 5), (4, 6, 5)]);
        assert_eq!(gappy.min_rate_over(&iv(0, 6)), Rate::ZERO);
        assert_eq!(gappy.min_rate_over(&iv(4, 6)), Rate::new(5));
    }

    #[test]
    fn quantity_integrates() {
        let p = profile(&[(0, 3, 5), (3, 8, 2)]);
        assert_eq!(p.quantity_over(&iv(0, 8)).unwrap(), Quantity::new(25));
        assert_eq!(p.quantity_over(&iv(2, 4)).unwrap(), Quantity::new(7));
        assert_eq!(p.quantity_over(&iv(100, 101)).unwrap(), Quantity::ZERO);
    }

    #[test]
    fn subtract_paper_example() {
        // [5]^(0,3) \ [3]^(1,2) = [5]^(0,1), [2]^(1,2), [5]^(2,3)
        let mut p = profile(&[(0, 3, 5)]);
        p.subtract(iv(1, 2), Rate::new(3)).unwrap();
        assert_eq!(
            p.segments(),
            &[
                (iv(0, 1), Rate::new(5)),
                (iv(1, 2), Rate::new(2)),
                (iv(2, 3), Rate::new(5)),
            ]
        );
        assert_canonical(&p);
    }

    #[test]
    fn subtract_insufficient_reports_first_shortfall() {
        let mut p = profile(&[(0, 3, 5), (3, 6, 1)]);
        let before = p.clone();
        let err = p.subtract(iv(0, 6), Rate::new(2)).unwrap_err();
        assert_eq!(err.at(), TimePoint::new(3));
        assert_eq!(err.available(), Rate::new(1));
        assert_eq!(err.demanded(), Rate::new(2));
        assert_eq!(p, before, "profile unchanged on error");
    }

    #[test]
    fn subtract_gap_fails() {
        let mut p = profile(&[(0, 2, 5)]);
        assert!(p.subtract(iv(0, 4), Rate::new(1)).is_err());
    }

    #[test]
    fn dominates_pointwise() {
        let big = profile(&[(0, 10, 5)]);
        assert!(big.dominates(&profile(&[(2, 4, 3), (6, 8, 5)])));
        assert!(!big.dominates(&profile(&[(2, 4, 6)])));
        assert!(!big.dominates(&profile(&[(8, 12, 1)])));
        assert!(big.dominates(&ResourceProfile::new()));
    }

    #[test]
    fn truncate_expires_past_availability() {
        let mut p = profile(&[(0, 3, 5), (5, 8, 2)]);
        p.truncate_before(TimePoint::new(2));
        assert_eq!(
            p.segments(),
            &[(iv(2, 3), Rate::new(5)), (iv(5, 8), Rate::new(2))]
        );
        p.truncate_before(TimePoint::new(4));
        assert_eq!(p.segments(), &[(iv(5, 8), Rate::new(2))]);
        p.truncate_before(TimePoint::new(100));
        assert!(p.is_empty());
    }

    #[test]
    fn exclude_zeroes_claimed_ticks() {
        use rota_interval::IntervalSet;
        let p = profile(&[(0, 6, 5)]);
        let claimed: IntervalSet = [iv(1, 2), iv(4, 5)].into_iter().collect();
        let left = p.exclude(&claimed);
        assert_eq!(
            left.segments(),
            &[
                (iv(0, 1), Rate::new(5)),
                (iv(2, 4), Rate::new(5)),
                (iv(5, 6), Rate::new(5)),
            ]
        );
        // excluding nothing is identity; excluding everything empties
        assert_eq!(p.exclude(&IntervalSet::new()), p);
        assert!(p.exclude(&IntervalSet::from_interval(iv(0, 6))).is_empty());
        assert_canonical(&left);
    }

    #[test]
    fn clamp_restricts() {
        let p = profile(&[(0, 3, 5), (5, 8, 2)]);
        let c = p.clamp(&iv(2, 6));
        assert_eq!(
            c.segments(),
            &[(iv(2, 3), Rate::new(5)), (iv(5, 6), Rate::new(2))]
        );
    }

    #[test]
    fn support_and_horizon() {
        let p = profile(&[(0, 3, 5), (5, 8, 2)]);
        assert_eq!(p.support().spans(), &[iv(0, 3), iv(5, 8)]);
        assert_eq!(p.horizon(), Some(TimePoint::new(8)));
        assert_eq!(ResourceProfile::new().horizon(), None);
    }

    #[test]
    fn add_overflow_detected() {
        let mut p = profile(&[(0, 3, u64::MAX)]);
        assert!(p.add(iv(0, 3), Rate::new(1)).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ResourceProfile::new().to_string(), "0");
        assert_eq!(
            profile(&[(0, 3, 5), (5, 8, 2)]).to_string(),
            "[5]^(0,3), [2]^(5,8)"
        );
    }
}
