//! Resource terms `[r]^τ_ξ` — the atoms of ROTA's resource representation.
//!
//! "Each computational resource is represented by a resource term `[r]^τ_ξ`,
//! where `r` represents the rate of availability of the resource, `τ` is
//! the time interval, and `ξ` denotes the located type."

use core::fmt;

use rota_interval::{AllenRelation, TimeInterval};

use crate::located::LocatedType;
use crate::rate::{OverflowError, Quantity, Rate};

/// A resource term `[r]^τ_ξ`: resource of located type `ξ` available at
/// rate `r` throughout time interval `τ`.
///
/// Terms with zero rate are *null* in the paper's terminology ("if the time
/// interval of a resource term is empty, the value of the resource term is
/// 0, or null"); empty intervals are unrepresentable by construction
/// ([`TimeInterval`] is always non-empty), and zero-rate terms are dropped
/// during [`ResourceSet`](crate::ResourceSet) normalization.
///
/// # Examples
///
/// ```
/// use rota_interval::TimeInterval;
/// use rota_resource::{LocatedType, Location, Rate, ResourceTerm};
///
/// // The paper's [5]^(0,3)_⟨cpu,l1⟩:
/// let term = ResourceTerm::new(
///     Rate::new(5),
///     TimeInterval::from_ticks(0, 3)?,
///     LocatedType::cpu(Location::new("l1")),
/// );
/// assert_eq!(term.total_quantity()?.units(), 15); // r × τ
/// assert_eq!(term.to_string(), "[5]^(0,3)_⟨cpu, l1⟩");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceTerm {
    located: LocatedType,
    interval: TimeInterval,
    rate: Rate,
}

impl ResourceTerm {
    /// Creates the term `[rate]^interval_located`.
    pub fn new(rate: Rate, interval: TimeInterval, located: LocatedType) -> Self {
        ResourceTerm {
            located,
            interval,
            rate,
        }
    }

    /// The availability rate `r`.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// The availability window `τ`.
    pub fn interval(&self) -> TimeInterval {
        self.interval
    }

    /// The located type `ξ`.
    pub fn located(&self) -> &LocatedType {
        &self.located
    }

    /// Whether the term is null (zero rate — provides nothing).
    pub fn is_null(&self) -> bool {
        self.rate.is_zero()
    }

    /// The paper's footnote-1 product `r × τ`: total quantity available
    /// over the term's interval.
    ///
    /// # Errors
    ///
    /// Returns [`OverflowError`] if the product exceeds `u64`.
    pub fn total_quantity(&self) -> Result<Quantity, OverflowError> {
        self.rate.over(self.interval.duration())
    }

    /// The paper's strict inequality on resource terms:
    /// `[r₁]^τ₁_ξ₁ > [r₂]^τ₂_ξ₂` iff the types match, `r₁ > r₂`, and `τ₂`
    /// is *during-or-equal* `τ₁` — a computation that required the
    /// right-hand term can use the left-hand one instead, with some spare.
    ///
    /// Note the paper's remark: it is **not** enough for the total quantity
    /// to be greater — the availability must cover the required window.
    pub fn exceeds(&self, other: &ResourceTerm) -> bool {
        self.located == other.located
            && self.rate > other.rate
            && self.interval.contains_interval(&other.interval)
    }

    /// Non-strict variant of [`exceeds`](ResourceTerm::exceeds): the term
    /// can stand in for `other` (possibly with nothing to spare). This is
    /// the condition under which the relative complement
    /// `self - other` is well defined and non-negative.
    pub fn can_supply(&self, other: &ResourceTerm) -> bool {
        self.located == other.located
            && self.rate >= other.rate
            && self.interval.contains_interval(&other.interval)
    }

    /// The Allen relation from this term's interval to `other`'s.
    pub fn interval_relation(&self, other: &ResourceTerm) -> AllenRelation {
        AllenRelation::relate(&self.interval, &other.interval)
    }

    /// Term subtraction per the paper:
    /// `[r₁]^τ₁ - [r₂]^τ₂ = { [r₁]^(τ₁\τ₂), [r₁-r₂]^τ₂ }` — the remainder
    /// keeps rate `r₁` outside the subtracted window and rate `r₁ - r₂`
    /// inside it. Null (zero-rate) pieces are omitted.
    ///
    /// # Errors
    ///
    /// Returns [`NotDominatedError`] unless `self.can_supply(other)`.
    pub fn subtract(&self, other: &ResourceTerm) -> Result<Vec<ResourceTerm>, NotDominatedError> {
        if !self.can_supply(other) {
            return Err(NotDominatedError {
                have: Box::new(self.clone()),
                need: Box::new(other.clone()),
            });
        }
        let mut out = Vec::with_capacity(3);
        for piece in self.interval.difference(&other.interval) {
            out.push(ResourceTerm::new(self.rate, piece, self.located.clone()));
        }
        let inner_rate = self.rate - other.rate;
        if !inner_rate.is_zero() {
            out.push(ResourceTerm::new(
                inner_rate,
                other.interval,
                self.located.clone(),
            ));
        }
        out.sort();
        Ok(out)
    }
}

impl fmt::Display for ResourceTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}]^{}_{}",
            self.rate.units_per_tick(),
            self.interval,
            self.located
        )
    }
}

/// Error returned when a subtraction's right-hand side is not dominated by
/// the left-hand side — the paper defines relative complement only when
/// every subtracted term is exceeded by an available one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotDominatedError {
    have: Box<ResourceTerm>,
    need: Box<ResourceTerm>,
}

impl NotDominatedError {
    /// The insufficient available term (or the closest candidate).
    pub fn have(&self) -> &ResourceTerm {
        &self.have
    }

    /// The demanded term that could not be covered.
    pub fn need(&self) -> &ResourceTerm {
        &self.need
    }
}

impl fmt::Display for NotDominatedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "resource term {} cannot supply demanded term {}",
            self.have, self.need
        )
    }
}

impl std::error::Error for NotDominatedError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::located::Location;

    fn iv(s: u64, e: u64) -> TimeInterval {
        TimeInterval::from_ticks(s, e).unwrap()
    }

    fn cpu_l1() -> LocatedType {
        LocatedType::cpu(Location::new("l1"))
    }

    fn term(r: u64, s: u64, e: u64) -> ResourceTerm {
        ResourceTerm::new(Rate::new(r), iv(s, e), cpu_l1())
    }

    #[test]
    fn quantity_is_rate_times_duration() {
        assert_eq!(term(5, 0, 3).total_quantity().unwrap(), Quantity::new(15));
    }

    #[test]
    fn exceeds_requires_all_three_conditions() {
        let big = term(5, 0, 10);
        assert!(big.exceeds(&term(3, 2, 5)));
        // equal rate is not strict excess
        assert!(!big.exceeds(&term(5, 2, 5)));
        assert!(big.can_supply(&term(5, 2, 5)));
        // window not covered
        assert!(!big.exceeds(&term(3, 8, 12)));
        assert!(!big.can_supply(&term(3, 8, 12)));
        // wrong located type
        let elsewhere = ResourceTerm::new(Rate::new(3), iv(2, 5), LocatedType::cpu("l2".into()));
        assert!(!big.exceeds(&elsewhere));
    }

    /// The paper's own caution: larger *total* quantity does not imply the
    /// term can satisfy a requirement confined to a window.
    #[test]
    fn total_quantity_is_not_sufficient_for_dominance() {
        let spread = term(2, 0, 100); // total 200
        let burst = term(10, 10, 12); // total 20
        assert!(spread.total_quantity().unwrap() > burst.total_quantity().unwrap());
        assert!(!spread.can_supply(&burst));
    }

    #[test]
    fn subtract_splits_around_window() {
        // [5]^(0,3) - [3]^(1,2) = {[5]^(0,1), [2]^(1,2), [5]^(2,3)} — the
        // paper's third worked example.
        let pieces = term(5, 0, 3).subtract(&term(3, 1, 2)).unwrap();
        assert_eq!(pieces, vec![term(5, 0, 1), term(2, 1, 2), term(5, 2, 3)]);
    }

    #[test]
    fn subtract_equal_rate_drops_null_piece() {
        let pieces = term(5, 0, 5).subtract(&term(5, 1, 3)).unwrap();
        assert_eq!(pieces, vec![term(5, 0, 1), term(5, 3, 5)]);
    }

    #[test]
    fn subtract_exact_match_is_empty() {
        assert!(term(5, 0, 5).subtract(&term(5, 0, 5)).unwrap().is_empty());
    }

    #[test]
    fn subtract_requires_dominance() {
        let err = term(2, 0, 3).subtract(&term(5, 0, 3)).unwrap_err();
        assert_eq!(err.have(), &term(2, 0, 3));
        assert_eq!(err.need(), &term(5, 0, 3));
        assert!(err.to_string().contains("cannot supply"));
    }

    #[test]
    fn interval_relation_delegates() {
        assert_eq!(
            term(1, 0, 3).interval_relation(&term(1, 3, 5)),
            AllenRelation::Meets
        );
    }

    #[test]
    fn null_detection() {
        assert!(ResourceTerm::new(Rate::ZERO, iv(0, 1), cpu_l1()).is_null());
        assert!(!term(1, 0, 1).is_null());
    }

    #[test]
    fn display_matches_paper() {
        assert_eq!(term(5, 0, 3).to_string(), "[5]^(0,3)_⟨cpu, l1⟩");
    }
}
