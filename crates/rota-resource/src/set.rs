//! Resource sets `Θ` — collections of resource terms over many located
//! types, kept in the paper's simplified (aggregated) normal form.

use core::fmt;
use std::collections::BTreeMap;

use rota_interval::{TimeInterval, TimePoint};

use crate::located::LocatedType;
use crate::profile::{InsufficientRateError, ResourceProfile};
use crate::rate::{OverflowError, Quantity, Rate};
use crate::term::ResourceTerm;

/// Error from [`ResourceSet`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResourceSetError {
    /// Arithmetic exceeded `u64`.
    Overflow,
    /// A relative complement was requested that is not defined: the paper
    /// defines `Θ₁ \ Θ₂` only when every term of `Θ₂` is dominated by
    /// availability in `Θ₁`.
    NotDominated {
        /// The located type at which coverage fails.
        located: LocatedType,
        /// First instant of shortfall.
        at: TimePoint,
        /// Rate available there.
        available: Rate,
        /// Rate demanded there.
        demanded: Rate,
    },
}

impl fmt::Display for ResourceSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceSetError::Overflow => f.write_str("resource arithmetic overflowed u64"),
            ResourceSetError::NotDominated {
                located,
                at,
                available,
                demanded,
            } => write!(
                f,
                "relative complement undefined: {located} at {at} has {available}, demanded {demanded}"
            ),
        }
    }
}

impl std::error::Error for ResourceSetError {}

impl From<OverflowError> for ResourceSetError {
    fn from(_: OverflowError) -> Self {
        ResourceSetError::Overflow
    }
}

/// A set `Θ` of resource terms, stored simplified: one canonical
/// [`ResourceProfile`] per located type.
///
/// Union (`∪`) aggregates rates where intervals overlap — the paper's
/// simplification — and relative complement (`\`) is defined exactly when
/// the subtrahend is everywhere dominated, per the paper's definition.
///
/// # Examples
///
/// The paper's first worked example — terms of different located types do
/// not interact:
///
/// ```
/// use rota_interval::TimeInterval;
/// use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};
///
/// let l1 = Location::new("l1");
/// let l2 = Location::new("l2");
/// let mut theta = ResourceSet::new();
/// theta.insert(ResourceTerm::new(
///     Rate::new(5), TimeInterval::from_ticks(0, 3)?, LocatedType::cpu(l1.clone())))?;
/// theta.insert(ResourceTerm::new(
///     Rate::new(5), TimeInterval::from_ticks(0, 5)?, LocatedType::network(l1, l2)))?;
/// assert_eq!(theta.to_terms().len(), 2); // distinct ξ: no aggregation
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ResourceSet {
    profiles: BTreeMap<LocatedType, ResourceProfile>,
}

impl ResourceSet {
    /// Creates the empty resource set.
    pub fn new() -> Self {
        ResourceSet {
            profiles: BTreeMap::new(),
        }
    }

    /// Builds a set from any collection of terms, simplifying as it goes.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceSetError::Overflow`] if aggregated rates exceed
    /// `u64`.
    pub fn from_terms<I>(terms: I) -> Result<Self, ResourceSetError>
    where
        I: IntoIterator<Item = ResourceTerm>,
    {
        let mut set = ResourceSet::new();
        for term in terms {
            set.insert(term)?;
        }
        Ok(set)
    }

    /// Whether the set holds no resource at all.
    pub fn is_empty(&self) -> bool {
        self.profiles.values().all(ResourceProfile::is_empty)
    }

    /// The located types with any availability, in order.
    pub fn located_types(&self) -> impl Iterator<Item = &LocatedType> {
        self.profiles
            .iter()
            .filter(|(_, p)| !p.is_empty())
            .map(|(lt, _)| lt)
    }

    /// The availability profile for `located` (empty profile if absent).
    pub fn profile(&self, located: &LocatedType) -> ResourceProfile {
        self.profiles.get(located).cloned().unwrap_or_default()
    }

    /// Inserts (unions) a term into the set — the paper's `Θ ∪ {[r]^τ_ξ}`
    /// with simplification.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceSetError::Overflow`] if the aggregated rate
    /// exceeds `u64`.
    pub fn insert(&mut self, term: ResourceTerm) -> Result<(), ResourceSetError> {
        if term.is_null() {
            return Ok(());
        }
        self.profiles
            .entry(term.located().clone())
            .or_default()
            .add(term.interval(), term.rate())?;
        Ok(())
    }

    /// Set union `Θ₁ ∪ Θ₂` with simplification.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceSetError::Overflow`] on rate overflow.
    pub fn union(&self, other: &ResourceSet) -> Result<ResourceSet, ResourceSetError> {
        let mut out = self.clone();
        for (lt, p) in &other.profiles {
            out.profiles.entry(lt.clone()).or_default().add_profile(p)?;
        }
        Ok(out)
    }

    /// Relative complement `Θ₁ \ Θ₂`, defined (per the paper) only when
    /// every demanded term is dominated by availability.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceSetError::NotDominated`] describing the first
    /// shortfall when the complement is undefined; `self` is not modified
    /// (the operation is non-destructive).
    pub fn relative_complement(&self, other: &ResourceSet) -> Result<ResourceSet, ResourceSetError> {
        // Pre-check dominance everywhere so we never partially subtract.
        for (lt, demand) in &other.profiles {
            let have = self.profiles.get(lt).cloned().unwrap_or_default();
            for (iv, r) in demand.segments() {
                let available = have.min_rate_over(iv);
                if available < *r {
                    let at = first_shortfall(&have, iv, *r);
                    return Err(ResourceSetError::NotDominated {
                        located: lt.clone(),
                        at,
                        available: have.rate_at(at),
                        demanded: *r,
                    });
                }
            }
        }
        let mut out = self.clone();
        for (lt, demand) in &other.profiles {
            let profile = out.profiles.entry(lt.clone()).or_default();
            profile
                .subtract_profile(demand)
                .expect("dominance pre-checked");
        }
        out.prune();
        Ok(out)
    }

    /// Consumes `rate` of `located` over `window` in place — the `ξ ↦ a`
    /// step of a transition rule.
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientRateError`] if availability falls short; the
    /// set is unchanged on error.
    pub fn consume(
        &mut self,
        located: &LocatedType,
        window: TimeInterval,
        rate: Rate,
    ) -> Result<(), InsufficientRateError> {
        let profile = self.profiles.entry(located.clone()).or_default();
        profile.subtract(window, rate)?;
        if profile.is_empty() {
            self.profiles.remove(located);
        }
        Ok(())
    }

    /// Rate of `located` available at tick `t`.
    pub fn rate_at(&self, located: &LocatedType, t: TimePoint) -> Rate {
        self.profiles
            .get(located)
            .map(|p| p.rate_at(t))
            .unwrap_or(Rate::ZERO)
    }

    /// Total quantity of `located` deliverable within `window` — the
    /// paper's `⋃ₛᵈ Θ` aggregate used by the satisfaction function `f`.
    ///
    /// # Errors
    ///
    /// Returns [`ResourceSetError::Overflow`] if the integral exceeds
    /// `u64`.
    pub fn quantity_over(
        &self,
        located: &LocatedType,
        window: &TimeInterval,
    ) -> Result<Quantity, ResourceSetError> {
        Ok(self
            .profiles
            .get(located)
            .map(|p| p.quantity_over(window))
            .transpose()?
            .unwrap_or(Quantity::ZERO))
    }

    /// Removes, per located type, every tick on which `claimed` has any
    /// availability — regardless of rate. This is the tick-granular
    /// complement used to compute expiring resources: ROTA's transition
    /// rules hand a located type's whole tick to one consumer, so a tick
    /// with any reservation on it offers nothing to anyone else.
    #[must_use]
    pub fn exclude_support(&self, claimed: &ResourceSet) -> ResourceSet {
        let mut out = ResourceSet::new();
        for (lt, p) in &self.profiles {
            let trimmed = match claimed.profiles.get(lt) {
                Some(c) => p.exclude(&c.support()),
                None => p.clone(),
            };
            if !trimmed.is_empty() {
                out.profiles.insert(lt.clone(), trimmed);
            }
        }
        out
    }

    /// Restricts the whole set to `window` — "the union of all resources
    /// in Θ which exist in the interval (s, d)".
    #[must_use]
    pub fn clamp(&self, window: &TimeInterval) -> ResourceSet {
        let mut out = ResourceSet::new();
        for (lt, p) in &self.profiles {
            let clamped = p.clamp(window);
            if !clamped.is_empty() {
                out.profiles.insert(lt.clone(), clamped);
            }
        }
        out
    }

    /// Expires everything before `t` (the expiration rules' effect of
    /// advancing time).
    pub fn truncate_before(&mut self, t: TimePoint) {
        for p in self.profiles.values_mut() {
            p.truncate_before(t);
        }
        self.prune();
    }

    /// The resource available during `window` that the rest of the set's
    /// consumers do not need — everything here, clamped. Exposed as a
    /// building block for Θ_expire computations in the logic crate.
    #[must_use]
    pub fn expiring_within(&self, window: &TimeInterval) -> ResourceSet {
        self.clamp(window)
    }

    /// The latest instant with any availability.
    pub fn horizon(&self) -> Option<TimePoint> {
        self.profiles.values().filter_map(ResourceProfile::horizon).max()
    }

    /// The canonical term decomposition — one term per maximal
    /// constant-rate segment per located type, sorted.
    pub fn to_terms(&self) -> Vec<ResourceTerm> {
        let mut out = Vec::new();
        for (lt, p) in &self.profiles {
            for (iv, r) in p.segments() {
                out.push(ResourceTerm::new(*r, *iv, lt.clone()));
            }
        }
        out
    }

    /// Number of terms in the canonical decomposition.
    pub fn term_count(&self) -> usize {
        self.profiles.values().map(|p| p.segments().len()).sum()
    }

    /// Whether `self` pointwise dominates `other` for every located type.
    pub fn dominates(&self, other: &ResourceSet) -> bool {
        other.profiles.iter().all(|(lt, demand)| {
            self.profiles
                .get(lt)
                .map(|have| have.dominates(demand))
                .unwrap_or_else(|| demand.is_empty())
        })
    }

    fn prune(&mut self) {
        self.profiles.retain(|_, p| !p.is_empty());
    }
}

fn first_shortfall(have: &ResourceProfile, window: &TimeInterval, rate: Rate) -> TimePoint {
    let mut at = window.start();
    while window.contains_tick(at) && have.rate_at(at) >= rate {
        at += rota_interval::TickDuration::DELTA;
    }
    at
}

impl FromIterator<ResourceTerm> for ResourceSet {
    /// Collects terms into a simplified set.
    ///
    /// # Panics
    ///
    /// Panics on rate overflow; use [`ResourceSet::from_terms`] for a
    /// fallible build.
    fn from_iter<I: IntoIterator<Item = ResourceTerm>>(iter: I) -> Self {
        ResourceSet::from_terms(iter).expect("rate overflow while collecting ResourceSet")
    }
}

impl Extend<ResourceTerm> for ResourceSet {
    /// # Panics
    ///
    /// Panics on rate overflow; use [`ResourceSet::insert`] for a fallible
    /// build.
    fn extend<I: IntoIterator<Item = ResourceTerm>>(&mut self, iter: I) {
        for term in iter {
            self.insert(term)
                .expect("rate overflow while extending ResourceSet");
        }
    }
}

impl fmt::Display for ResourceSet {
    /// Prints the canonical term decomposition as a set.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let terms = self.to_terms();
        if terms.is_empty() {
            return f.write_str("{}");
        }
        f.write_str("{")?;
        let mut first = true;
        for t in terms {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::located::Location;

    fn iv(s: u64, e: u64) -> TimeInterval {
        TimeInterval::from_ticks(s, e).unwrap()
    }

    fn cpu(loc: &str) -> LocatedType {
        LocatedType::cpu(Location::new(loc))
    }

    fn net(a: &str, b: &str) -> LocatedType {
        LocatedType::network(Location::new(a), Location::new(b))
    }

    fn term(lt: LocatedType, r: u64, s: u64, e: u64) -> ResourceTerm {
        ResourceTerm::new(Rate::new(r), iv(s, e), lt)
    }

    /// Paper worked example 1: distinct located types do not aggregate.
    #[test]
    fn paper_example_distinct_types() {
        let theta: ResourceSet = [
            term(cpu("l1"), 5, 0, 3),
            term(net("l1", "l2"), 5, 0, 5),
        ]
        .into_iter()
        .collect();
        let terms = theta.to_terms();
        assert_eq!(terms.len(), 2);
        assert_eq!(terms[0], term(cpu("l1"), 5, 0, 3));
        assert_eq!(terms[1], term(net("l1", "l2"), 5, 0, 5));
    }

    /// Paper worked example 2: same type overlapping terms aggregate.
    /// [5]^(0,3) ∪ [5]^(0,5) = [10]^(0,3) ∪ [5]^(3,5).
    #[test]
    fn paper_example_aggregation() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 3), term(cpu("l1"), 5, 0, 5)]
            .into_iter()
            .collect();
        assert_eq!(
            theta.to_terms(),
            vec![term(cpu("l1"), 10, 0, 3), term(cpu("l1"), 5, 3, 5)]
        );
    }

    /// Paper worked example 3: relative complement splits around the
    /// demanded window. [5]^(0,3) \ [3]^(1,2) = [5]^(0,1) ∪ [2]^(1,2) ∪ [5]^(2,3).
    #[test]
    fn paper_example_relative_complement() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 3)].into_iter().collect();
        let demand: ResourceSet = [term(cpu("l1"), 3, 1, 2)].into_iter().collect();
        let rest = theta.relative_complement(&demand).unwrap();
        assert_eq!(
            rest.to_terms(),
            vec![
                term(cpu("l1"), 5, 0, 1),
                term(cpu("l1"), 2, 1, 2),
                term(cpu("l1"), 5, 2, 3),
            ]
        );
    }

    #[test]
    fn complement_undefined_when_not_dominated() {
        let theta: ResourceSet = [term(cpu("l1"), 2, 0, 3)].into_iter().collect();
        let demand: ResourceSet = [term(cpu("l1"), 3, 1, 2)].into_iter().collect();
        let err = theta.relative_complement(&demand).unwrap_err();
        match err {
            ResourceSetError::NotDominated {
                located,
                at,
                available,
                demanded,
            } => {
                assert_eq!(located, cpu("l1"));
                assert_eq!(at, TimePoint::new(1));
                assert_eq!(available, Rate::new(2));
                assert_eq!(demanded, Rate::new(3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn complement_undefined_for_missing_type() {
        let theta = ResourceSet::new();
        let demand: ResourceSet = [term(cpu("l1"), 1, 0, 1)].into_iter().collect();
        assert!(matches!(
            theta.relative_complement(&demand),
            Err(ResourceSetError::NotDominated { .. })
        ));
    }

    #[test]
    fn complement_roundtrip_restores_semantics() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 10), term(net("l1", "l2"), 4, 2, 8)]
            .into_iter()
            .collect();
        let demand: ResourceSet = [term(cpu("l1"), 2, 3, 6), term(net("l1", "l2"), 4, 2, 5)]
            .into_iter()
            .collect();
        let rest = theta.relative_complement(&demand).unwrap();
        let rebuilt = rest.union(&demand).unwrap();
        assert_eq!(rebuilt, theta);
    }

    #[test]
    fn union_is_commutative() {
        let a: ResourceSet = [term(cpu("l1"), 5, 0, 3), term(cpu("l2"), 1, 1, 9)]
            .into_iter()
            .collect();
        let b: ResourceSet = [term(cpu("l1"), 2, 2, 6)].into_iter().collect();
        assert_eq!(a.union(&b).unwrap(), b.union(&a).unwrap());
    }

    #[test]
    fn consume_and_queries() {
        let mut theta: ResourceSet = [term(cpu("l1"), 5, 0, 5)].into_iter().collect();
        theta.consume(&cpu("l1"), iv(0, 2), Rate::new(5)).unwrap();
        assert_eq!(theta.rate_at(&cpu("l1"), TimePoint::new(1)), Rate::ZERO);
        assert_eq!(theta.rate_at(&cpu("l1"), TimePoint::new(3)), Rate::new(5));
        assert_eq!(
            theta.quantity_over(&cpu("l1"), &iv(0, 5)).unwrap(),
            Quantity::new(15)
        );
        // over-consumption is rejected and state preserved
        assert!(theta.consume(&cpu("l1"), iv(0, 5), Rate::new(1)).is_err());
        assert_eq!(
            theta.quantity_over(&cpu("l1"), &iv(0, 5)).unwrap(),
            Quantity::new(15)
        );
    }

    #[test]
    fn consume_to_exhaustion_prunes() {
        let mut theta: ResourceSet = [term(cpu("l1"), 5, 0, 5)].into_iter().collect();
        theta.consume(&cpu("l1"), iv(0, 5), Rate::new(5)).unwrap();
        assert!(theta.is_empty());
        assert_eq!(theta.located_types().count(), 0);
    }

    #[test]
    fn clamp_and_truncate() {
        let mut theta: ResourceSet = [term(cpu("l1"), 5, 0, 10), term(cpu("l2"), 3, 8, 12)]
            .into_iter()
            .collect();
        let window = theta.clamp(&iv(0, 4));
        assert_eq!(window.to_terms(), vec![term(cpu("l1"), 5, 0, 4)]);
        theta.truncate_before(TimePoint::new(10));
        assert_eq!(theta.to_terms(), vec![term(cpu("l2"), 3, 10, 12)]);
    }

    #[test]
    fn exclude_support_is_tick_granular() {
        // availability rate 5 over (0,6); claim rate 1 over (2,4):
        // the whole ticks (2,4) disappear, regardless of the claimed rate.
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 6)].into_iter().collect();
        let claimed: ResourceSet = [term(cpu("l1"), 1, 2, 4)].into_iter().collect();
        let free = theta.exclude_support(&claimed);
        assert_eq!(
            free.to_terms(),
            vec![term(cpu("l1"), 5, 0, 2), term(cpu("l1"), 5, 4, 6)]
        );
        // other types unaffected
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 6), term(cpu("l2"), 3, 0, 6)]
            .into_iter()
            .collect();
        let free = theta.exclude_support(&claimed);
        assert_eq!(free.quantity_over(&cpu("l2"), &iv(0, 6)).unwrap(), Quantity::new(18));
        // claiming a type we do not have is a no-op
        let alien: ResourceSet = [term(cpu("l9"), 1, 0, 6)].into_iter().collect();
        assert_eq!(theta.exclude_support(&alien), theta);
    }

    #[test]
    fn dominates_checks_all_types() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 10), term(cpu("l2"), 3, 0, 10)]
            .into_iter()
            .collect();
        let small: ResourceSet = [term(cpu("l1"), 4, 2, 8), term(cpu("l2"), 3, 1, 3)]
            .into_iter()
            .collect();
        assert!(theta.dominates(&small));
        let too_much: ResourceSet = [term(cpu("l3"), 1, 0, 1)].into_iter().collect();
        assert!(!theta.dominates(&too_much));
        assert!(theta.dominates(&ResourceSet::new()));
    }

    #[test]
    fn null_terms_ignored() {
        let mut theta = ResourceSet::new();
        theta
            .insert(ResourceTerm::new(Rate::ZERO, iv(0, 5), cpu("l1")))
            .unwrap();
        assert!(theta.is_empty());
        assert_eq!(theta.term_count(), 0);
    }

    #[test]
    fn horizon_spans_types() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 10), term(cpu("l2"), 3, 8, 12)]
            .into_iter()
            .collect();
        assert_eq!(theta.horizon(), Some(TimePoint::new(12)));
        assert_eq!(ResourceSet::new().horizon(), None);
    }

    #[test]
    fn display_set_notation() {
        let theta: ResourceSet = [term(cpu("l1"), 5, 0, 3)].into_iter().collect();
        assert_eq!(theta.to_string(), "{[5]^(0,3)_⟨cpu, l1⟩}");
        assert_eq!(ResourceSet::new().to_string(), "{}");
    }
}
