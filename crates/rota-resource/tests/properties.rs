//! Property-based tests for resource terms, profiles and sets.

use proptest::prelude::*;
use rota_interval::{TimeInterval, TimePoint};
use rota_resource::{LocatedType, Location, Rate, ResourceProfile, ResourceSet, ResourceTerm};

const MAX_TICK: u64 = 24;

fn arb_interval() -> impl Strategy<Value = TimeInterval> {
    (0..MAX_TICK).prop_flat_map(|s| {
        ((s + 1)..=MAX_TICK).prop_map(move |e| TimeInterval::from_ticks(s, e).expect("s < e"))
    })
}

fn arb_located() -> impl Strategy<Value = LocatedType> {
    prop_oneof![
        (0u8..3).prop_map(|i| LocatedType::cpu(Location::new(format!("l{i}")))),
        (0u8..2).prop_map(|i| LocatedType::memory(Location::new(format!("l{i}")))),
        Just(LocatedType::network(Location::new("l0"), Location::new("l1"))),
    ]
}

fn arb_term() -> impl Strategy<Value = ResourceTerm> {
    (arb_located(), arb_interval(), 1u64..20)
        .prop_map(|(lt, iv, r)| ResourceTerm::new(Rate::new(r), iv, lt))
}

fn arb_terms(max: usize) -> impl Strategy<Value = Vec<ResourceTerm>> {
    proptest::collection::vec(arb_term(), 0..max)
}

fn arb_profile() -> impl Strategy<Value = ResourceProfile> {
    proptest::collection::vec((arb_interval(), 1u64..20), 0..6).prop_map(|parts| {
        let mut p = ResourceProfile::new();
        for (iv, r) in parts {
            p.add(iv, Rate::new(r)).expect("small rates cannot overflow");
        }
        p
    })
}

/// Semantic view of a set: rate per (located type, tick).
fn rate_everywhere(set: &ResourceSet) -> Vec<(LocatedType, u64, u64)> {
    let mut out = Vec::new();
    let types: Vec<LocatedType> = set.located_types().cloned().collect();
    for lt in types {
        for t in 0..=MAX_TICK {
            let r = set.rate_at(&lt, TimePoint::new(t)).units_per_tick();
            if r > 0 {
                out.push((lt.clone(), t, r));
            }
        }
    }
    out
}

proptest! {
    /// Building a set is order-insensitive: same terms, any order, same
    /// canonical form. (Simplification is canonical.)
    #[test]
    fn set_construction_is_order_insensitive(terms in arb_terms(8)) {
        let forward = ResourceSet::from_terms(terms.clone()).unwrap();
        let mut shuffled = terms;
        shuffled.reverse();
        let backward = ResourceSet::from_terms(shuffled).unwrap();
        prop_assert_eq!(forward, backward);
    }

    /// to_terms() roundtrips: rebuilding from the canonical decomposition
    /// reproduces the set exactly.
    #[test]
    fn to_terms_roundtrip(terms in arb_terms(8)) {
        let set = ResourceSet::from_terms(terms).unwrap();
        let rebuilt = ResourceSet::from_terms(set.to_terms()).unwrap();
        prop_assert_eq!(set, rebuilt);
    }

    /// Union is pointwise rate addition.
    #[test]
    fn union_is_pointwise_sum(a in arb_terms(5), b in arb_terms(5)) {
        let sa = ResourceSet::from_terms(a).unwrap();
        let sb = ResourceSet::from_terms(b).unwrap();
        let u = sa.union(&sb).unwrap();
        for (lt, t, r) in rate_everywhere(&u) {
            let expect = sa.rate_at(&lt, TimePoint::new(t)).units_per_tick()
                + sb.rate_at(&lt, TimePoint::new(t)).units_per_tick();
            prop_assert_eq!(r, expect);
        }
        // and commutative
        prop_assert_eq!(u, sb.union(&sa).unwrap());
    }

    /// Whenever the relative complement is defined,
    /// (Θ₁ \ Θ₂) ∪ Θ₂ == Θ₁; when undefined, dominance indeed fails.
    #[test]
    fn complement_inverts_union(a in arb_terms(6), b in arb_terms(3)) {
        let theta = ResourceSet::from_terms(a).unwrap();
        let demand = ResourceSet::from_terms(b).unwrap();
        match theta.relative_complement(&demand) {
            Ok(rest) => {
                prop_assert!(theta.dominates(&demand));
                prop_assert_eq!(rest.union(&demand).unwrap(), theta);
            }
            Err(_) => prop_assert!(!theta.dominates(&demand)),
        }
    }

    /// quantity_over equals the tick-by-tick sum of rates.
    #[test]
    fn quantity_is_tickwise_sum(terms in arb_terms(6), win in arb_interval(), lt in arb_located()) {
        let set = ResourceSet::from_terms(terms).unwrap();
        let q = set.quantity_over(&lt, &win).unwrap().units();
        let manual: u64 = win
            .ticks()
            .map(|t| set.rate_at(&lt, t).units_per_tick())
            .sum();
        prop_assert_eq!(q, manual);
    }

    /// clamp restricts support without changing in-window rates.
    #[test]
    fn clamp_preserves_in_window(terms in arb_terms(6), win in arb_interval(), lt in arb_located()) {
        let set = ResourceSet::from_terms(terms).unwrap();
        let clamped = set.clamp(&win);
        for t in 0..=MAX_TICK {
            let tp = TimePoint::new(t);
            let expect = if win.contains_tick(tp) {
                set.rate_at(&lt, tp)
            } else {
                Rate::ZERO
            };
            prop_assert_eq!(clamped.rate_at(&lt, tp), expect);
        }
    }

    /// truncate_before zeroes history and keeps the future.
    #[test]
    fn truncate_semantics(terms in arb_terms(6), cut in 0..=MAX_TICK, lt in arb_located()) {
        let set = ResourceSet::from_terms(terms).unwrap();
        let mut cut_set = set.clone();
        cut_set.truncate_before(TimePoint::new(cut));
        for t in 0..=MAX_TICK {
            let tp = TimePoint::new(t);
            let expect = if t >= cut { set.rate_at(&lt, tp) } else { Rate::ZERO };
            prop_assert_eq!(cut_set.rate_at(&lt, tp), expect);
        }
    }

    /// Profile dominance matches pointwise comparison.
    #[test]
    fn dominance_is_pointwise(p in arb_profile(), q in arb_profile()) {
        let pointwise = (0..=MAX_TICK).all(|t| {
            p.rate_at(TimePoint::new(t)) >= q.rate_at(TimePoint::new(t))
        });
        prop_assert_eq!(p.dominates(&q), pointwise);
    }

    /// min_rate_over is the minimum of rate_at across the window.
    #[test]
    fn min_rate_matches_pointwise(p in arb_profile(), win in arb_interval()) {
        let manual = win
            .ticks()
            .map(|t| p.rate_at(t).units_per_tick())
            .min()
            .expect("non-empty interval");
        prop_assert_eq!(p.min_rate_over(&win).units_per_tick(), manual);
    }

    /// Consuming then re-adding restores the profile (within a dominated
    /// window).
    #[test]
    fn consume_restore_roundtrip(win in arb_interval(), base in 1u64..20, bite in 1u64..20) {
        let lt = LocatedType::cpu(Location::new("l1"));
        let mut set = ResourceSet::from_terms(
            [ResourceTerm::new(Rate::new(base.max(bite)), TimeInterval::from_ticks(0, MAX_TICK).unwrap(), lt.clone())],
        ).unwrap();
        let original = set.clone();
        set.consume(&lt, win, Rate::new(bite.min(base))).unwrap();
        set.insert(ResourceTerm::new(Rate::new(bite.min(base)), win, lt)).unwrap();
        prop_assert_eq!(set, original);
    }

    /// Term dominance (`exceeds`) is a strict partial order on same-typed
    /// terms: irreflexive and transitive.
    #[test]
    fn exceeds_is_strict_partial_order(a in arb_term(), b in arb_term(), c in arb_term()) {
        prop_assert!(!a.exceeds(&a));
        if a.exceeds(&b) && b.exceeds(&c) {
            prop_assert!(a.exceeds(&c));
        }
        if a.exceeds(&b) {
            prop_assert!(!b.exceeds(&a));
        }
    }
}
