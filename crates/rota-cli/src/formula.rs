//! A small text language for ROTA formulas, used by `rota holds`.
//!
//! Grammar (ASCII keywords for the paper's symbols):
//!
//! ```text
//! formula    := disjunct
//! disjunct   := conjunct ( "or" conjunct )*
//! conjunct   := unary ( "and" unary )*
//! unary      := "not" unary | "eventually" unary | "always" unary | atom
//! atom       := "true" | "false" | "satisfy(" demands "in" range ")"
//!             | "(" formula ")"
//! demands    := demand ( "," demand )*
//! demand     := kind "@" loc [ "->" loc ] ":" amount
//! range      := int ".." int
//! ```
//!
//! Examples:
//!
//! ```text
//! satisfy(cpu@l1:8 in 0..10)
//! eventually satisfy(cpu@l1:8, network@l1->l2:4 in 0..20)
//! not always satisfy(cpu@l1:16 in 0..8)
//! ```

use rota_actor::{ResourceDemand, SimpleRequirement};
use rota_interval::TimeInterval;
use rota_logic::Formula;
use rota_resource::{LocatedType, Location, Quantity};

/// A parse error with position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "formula parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses the textual formula language into a [`Formula`].
///
/// # Errors
///
/// Returns [`ParseError`] with a description of the first offending
/// token.
pub fn parse_formula(text: &str) -> Result<Formula, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser { tokens, pos: 0 };
    let formula = parser.disjunct()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::new(format!(
            "unexpected trailing input at `{}`",
            parser.tokens[parser.pos]
        )));
    }
    Ok(formula)
}

fn tokenize(text: &str) -> Result<Vec<String>, ParseError> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let mut chars = text.chars().peekable();
    let flush = |word: &mut String, tokens: &mut Vec<String>| {
        if !word.is_empty() {
            tokens.push(std::mem::take(word));
        }
    };
    while let Some(c) = chars.next() {
        match c {
            c if c.is_whitespace() => flush(&mut word, &mut tokens),
            '(' | ')' | ',' | ':' | '@' => {
                flush(&mut word, &mut tokens);
                tokens.push(c.to_string());
            }
            '-' if chars.peek() == Some(&'>') => {
                chars.next();
                flush(&mut word, &mut tokens);
                tokens.push("->".into());
            }
            '.' if chars.peek() == Some(&'.') => {
                chars.next();
                flush(&mut word, &mut tokens);
                tokens.push("..".into());
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' => word.push(c),
            other => return Err(ParseError::new(format!("unexpected character `{other}`"))),
        }
    }
    flush(&mut word, &mut tokens);
    Ok(tokens)
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn next(&mut self) -> Result<&str, ParseError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| ParseError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        let got = self.next()?;
        if got == token {
            Ok(())
        } else {
            Err(ParseError::new(format!("expected `{token}`, got `{got}`")))
        }
    }

    fn disjunct(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.conjunct()?;
        while self.peek() == Some("or") {
            self.pos += 1;
            let right = self.conjunct()?;
            left = Formula::or(left, right);
        }
        Ok(left)
    }

    fn conjunct(&mut self) -> Result<Formula, ParseError> {
        let mut left = self.unary()?;
        while self.peek() == Some("and") {
            self.pos += 1;
            let right = self.unary()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some("not") => {
                self.pos += 1;
                Ok(self.unary()?.not())
            }
            Some("eventually") => {
                self.pos += 1;
                Ok(self.unary()?.eventually())
            }
            Some("always") => {
                self.pos += 1;
                Ok(self.unary()?.always())
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<Formula, ParseError> {
        match self.next()? {
            "true" => Ok(Formula::True),
            "false" => Ok(Formula::False),
            "(" => {
                let inner = self.disjunct()?;
                self.expect(")")?;
                Ok(inner)
            }
            "satisfy" => {
                self.expect("(")?;
                let requirement = self.requirement()?;
                self.expect(")")?;
                Ok(Formula::SatisfySimple(requirement))
            }
            other => Err(ParseError::new(format!(
                "expected a formula, got `{other}`"
            ))),
        }
    }

    fn requirement(&mut self) -> Result<SimpleRequirement, ParseError> {
        let mut demand = ResourceDemand::new();
        loop {
            let (located, amount) = self.demand()?;
            demand.add(located, amount);
            if self.peek() == Some(",") {
                self.pos += 1;
                continue;
            }
            break;
        }
        self.expect("in")?;
        let start: u64 = self.int()?;
        self.expect("..")?;
        let end: u64 = self.int()?;
        let window = TimeInterval::from_ticks(start, end)
            .map_err(|e| ParseError::new(e.to_string()))?;
        Ok(SimpleRequirement::new(demand, window))
    }

    fn demand(&mut self) -> Result<(LocatedType, Quantity), ParseError> {
        let kind = self.next()?.to_string();
        self.expect("@")?;
        let loc = self.next()?.to_string();
        let located = if self.peek() == Some("->") {
            self.pos += 1;
            let to = self.next()?.to_string();
            if kind != "network" && kind != "net" {
                return Err(ParseError::new(format!(
                    "`{kind}` cannot have a destination; only network@a->b"
                )));
            }
            LocatedType::network(Location::new(loc), Location::new(to))
        } else {
            match kind.as_str() {
                "cpu" => LocatedType::cpu(Location::new(loc)),
                "memory" | "mem" => LocatedType::memory(Location::new(loc)),
                "network" | "net" => {
                    return Err(ParseError::new(
                        "network demands need a destination: network@a->b",
                    ))
                }
                other => LocatedType::Node {
                    kind: rota_resource::NodeResourceKind::custom(other),
                    location: Location::new(loc),
                },
            }
        };
        self.expect(":")?;
        let amount = Quantity::new(self.int()?);
        Ok((located, amount))
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        let t = self.next()?;
        t.parse()
            .map_err(|_| ParseError::new(format!("expected a number, got `{t}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_operators() {
        assert_eq!(parse_formula("true").unwrap(), Formula::True);
        assert_eq!(parse_formula("false").unwrap(), Formula::False);
        let f = parse_formula("not true").unwrap();
        assert_eq!(f, Formula::True.not());
        let f = parse_formula("eventually satisfy(cpu@l1:8 in 0..10)").unwrap();
        assert!(matches!(f, Formula::Eventually(_)));
        let f = parse_formula("always (true or false)").unwrap();
        assert!(matches!(f, Formula::Always(_)));
        let f = parse_formula("true and false or true").unwrap();
        assert!(matches!(f, Formula::Or(_, _)));
    }

    #[test]
    fn parses_multi_type_demands() {
        let f = parse_formula("satisfy(cpu@l1:8, network@l1->l2:4, mem@l1:2 in 0..20)").unwrap();
        match f {
            Formula::SatisfySimple(req) => {
                assert_eq!(req.demand().len(), 3);
                assert_eq!(
                    req.demand()
                        .amount(&LocatedType::cpu(Location::new("l1")))
                        .units(),
                    8
                );
                assert_eq!(req.window(), TimeInterval::from_ticks(0, 20).unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn custom_kinds_parse() {
        let f = parse_formula("satisfy(gpu@l3:5 in 1..4)").unwrap();
        match f {
            Formula::SatisfySimple(req) => {
                assert_eq!(req.demand().len(), 1);
                let lt = req.demand().located_types().next().unwrap().clone();
                assert_eq!(lt.to_string(), "⟨gpu, l3⟩");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_formula("").is_err());
        assert!(parse_formula("satisfy(cpu@l1:8 in 10..10)").is_err());
        assert!(parse_formula("satisfy(network@l1:4 in 0..5)").is_err());
        assert!(parse_formula("satisfy(cpu@l1:8 in 0..5) extra").is_err());
        assert!(parse_formula("satisfy(cpu@l1:x in 0..5)").is_err());
        assert!(parse_formula("maybe true").is_err());
        assert!(parse_formula("satisfy(cpu@l1->l2:4 in 0..5)").is_err());
        assert!(parse_formula("true &").is_err());
    }

    #[test]
    fn precedence_and_binds_tighter_than_or() {
        // a or b and c parses as a or (b and c)
        let f = parse_formula("false or true and true").unwrap();
        // evaluate structurally: Or(false, And(true,true)) is true
        let checker = rota_logic::ModelChecker::greedy(0);
        let state = rota_logic::State::new(
            rota_resource::ResourceSet::new(),
            rota_interval::TimePoint::ZERO,
        );
        assert!(checker.holds(&state, &f));
    }
}
