//! The JSON specification format for the CLI — the serialization
//! boundary between files on disk and the (serde-free) library types.
//!
//! A spec file describes a system's resource terms and one
//! deadline-constrained computation:
//!
//! ```json
//! {
//!   "resources": [
//!     { "kind": "cpu", "location": "l1", "rate": 4, "start": 0, "end": 20 },
//!     { "kind": "network", "from": "l1", "to": "l2", "rate": 4, "start": 0, "end": 20 }
//!   ],
//!   "computation": {
//!     "name": "report-job",
//!     "start": 0,
//!     "deadline": 20,
//!     "actors": [
//!       { "name": "worker", "origin": "l1", "actions": [
//!         { "do": "evaluate" },
//!         { "do": "evaluate", "work": 12 },
//!         { "do": "send", "to": "collector", "dest": "l2" },
//!         { "do": "create", "child": "helper" },
//!         { "do": "ready" },
//!         { "do": "migrate", "dest": "l2" }
//!       ] }
//!     ]
//!   }
//! }
//! ```

use serde::Deserialize;

use rota_actor::{ActionKind, ActorComputation, DistributedComputation};
use rota_interval::{TimeInterval, TimePoint};
use rota_resource::{LocatedType, Location, Quantity, Rate, ResourceSet, ResourceTerm};

/// A resource term in the spec file.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase", deny_unknown_fields)]
pub enum ResourceSpec {
    /// `⟨cpu, location⟩` at `rate` over `[start, end)`.
    Cpu {
        /// Node name.
        location: String,
        /// Units per tick.
        rate: u64,
        /// Inclusive start tick.
        start: u64,
        /// Exclusive end tick.
        end: u64,
    },
    /// `⟨memory, location⟩` at `rate` over `[start, end)`.
    Memory {
        /// Node name.
        location: String,
        /// Units per tick.
        rate: u64,
        /// Inclusive start tick.
        start: u64,
        /// Exclusive end tick.
        end: u64,
    },
    /// `⟨network, from→to⟩` at `rate` over `[start, end)`.
    Network {
        /// Source node.
        from: String,
        /// Destination node.
        to: String,
        /// Units per tick.
        rate: u64,
        /// Inclusive start tick.
        start: u64,
        /// Exclusive end tick.
        end: u64,
    },
}

/// An action in the spec file.
#[derive(Debug, Clone, Deserialize)]
#[serde(tag = "do", rename_all = "lowercase", deny_unknown_fields)]
pub enum ActionSpec {
    /// `evaluate(e)`; optional explicit `work` CPU units.
    Evaluate {
        /// Optional explicit CPU amount.
        #[serde(default)]
        work: Option<u64>,
    },
    /// `send(to, m)` where `to` resides at `dest`.
    Send {
        /// Recipient actor name.
        to: String,
        /// Recipient's location.
        dest: String,
        /// Message size factor (default 1).
        #[serde(default = "default_size")]
        size: u64,
    },
    /// `create(child)`.
    Create {
        /// Child actor name.
        child: String,
    },
    /// `ready(b)`.
    Ready,
    /// `migrate(dest)`.
    Migrate {
        /// Destination location.
        dest: String,
    },
}

fn default_size() -> u64 {
    1
}

/// One actor's computation in the spec file.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ActorSpec {
    /// Actor name (globally unique).
    pub name: String,
    /// Starting location.
    pub origin: String,
    /// Action sequence.
    pub actions: Vec<ActionSpec>,
}

/// The computation `(Λ, s, d)` in the spec file.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ComputationSpec {
    /// Identifying name.
    pub name: String,
    /// Earliest start tick `s`.
    pub start: u64,
    /// Deadline tick `d`.
    pub deadline: u64,
    /// Participating actors.
    pub actors: Vec<ActorSpec>,
}

/// A whole check-spec file.
#[derive(Debug, Clone, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct CheckSpec {
    /// The system's resource terms.
    pub resources: Vec<ResourceSpec>,
    /// The computation to admission-check.
    pub computation: ComputationSpec,
}

/// Spec-level errors with user-facing messages.
#[derive(Debug)]
pub enum SpecError {
    /// JSON syntax or schema problem.
    Parse(serde_json::Error),
    /// Semantically invalid content (empty interval, bad window, …).
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec parse error: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Parse(e)
    }
}

impl CheckSpec {
    /// Parses a spec from JSON text.
    ///
    /// # Errors
    ///
    /// [`SpecError::Parse`] on malformed JSON or unknown fields.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Converts the resource list into a library [`ResourceSet`].
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] for empty intervals or rate overflow.
    pub fn resources(&self) -> Result<ResourceSet, SpecError> {
        let mut theta = ResourceSet::new();
        for r in &self.resources {
            let (located, rate, start, end) = match r {
                ResourceSpec::Cpu {
                    location,
                    rate,
                    start,
                    end,
                } => (
                    LocatedType::cpu(Location::new(location)),
                    *rate,
                    *start,
                    *end,
                ),
                ResourceSpec::Memory {
                    location,
                    rate,
                    start,
                    end,
                } => (
                    LocatedType::memory(Location::new(location)),
                    *rate,
                    *start,
                    *end,
                ),
                ResourceSpec::Network {
                    from,
                    to,
                    rate,
                    start,
                    end,
                } => (
                    LocatedType::network(Location::new(from), Location::new(to)),
                    *rate,
                    *start,
                    *end,
                ),
            };
            let interval = TimeInterval::from_ticks(start, end).map_err(|e| {
                SpecError::Invalid(format!("resource {located}: {e}"))
            })?;
            theta
                .insert(ResourceTerm::new(Rate::new(rate), interval, located))
                .map_err(|e| SpecError::Invalid(e.to_string()))?;
        }
        Ok(theta)
    }

    /// Converts the computation into a library
    /// [`DistributedComputation`].
    ///
    /// # Errors
    ///
    /// [`SpecError::Invalid`] when the deadline does not follow the start.
    pub fn computation(&self) -> Result<DistributedComputation, SpecError> {
        let spec = &self.computation;
        let actors = spec
            .actors
            .iter()
            .map(|a| {
                let mut gamma = ActorComputation::new(a.name.as_str(), a.origin.as_str());
                for action in &a.actions {
                    gamma.push(match action {
                        ActionSpec::Evaluate { work } => ActionKind::Evaluate {
                            work: work.map(Quantity::new),
                        },
                        ActionSpec::Send { to, dest, size } => ActionKind::Send {
                            to: to.as_str().into(),
                            dest: Location::new(dest),
                            size: *size,
                        },
                        ActionSpec::Create { child } => ActionKind::create(child.as_str()),
                        ActionSpec::Ready => ActionKind::Ready,
                        ActionSpec::Migrate { dest } => ActionKind::migrate(dest.as_str()),
                    });
                }
                gamma
            })
            .collect();
        DistributedComputation::new(
            spec.name.as_str(),
            actors,
            TimePoint::new(spec.start),
            TimePoint::new(spec.deadline),
        )
        .map_err(|e| SpecError::Invalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
        "resources": [
            { "kind": "cpu", "location": "l1", "rate": 4, "start": 0, "end": 20 },
            { "kind": "memory", "location": "l1", "rate": 2, "start": 0, "end": 20 },
            { "kind": "network", "from": "l1", "to": "l2", "rate": 4, "start": 0, "end": 20 }
        ],
        "computation": {
            "name": "job",
            "start": 0,
            "deadline": 20,
            "actors": [
                { "name": "worker", "origin": "l1", "actions": [
                    { "do": "evaluate" },
                    { "do": "evaluate", "work": 12 },
                    { "do": "send", "to": "peer", "dest": "l2", "size": 2 },
                    { "do": "create", "child": "helper" },
                    { "do": "ready" },
                    { "do": "migrate", "dest": "l2" }
                ] }
            ]
        }
    }"#;

    #[test]
    fn parses_and_converts_sample() {
        let spec = CheckSpec::from_json(SAMPLE).unwrap();
        let theta = spec.resources().unwrap();
        assert_eq!(theta.located_types().count(), 3);
        let lambda = spec.computation().unwrap();
        assert_eq!(lambda.name(), "job");
        assert_eq!(lambda.action_count(), 6);
        assert_eq!(lambda.deadline(), TimePoint::new(20));
    }

    #[test]
    fn rejects_unknown_fields() {
        let bad = r#"{ "resources": [], "computation": {
            "name": "x", "start": 0, "deadline": 1, "actors": [], "bogus": true } }"#;
        assert!(matches!(
            CheckSpec::from_json(bad),
            Err(SpecError::Parse(_))
        ));
    }

    #[test]
    fn rejects_empty_interval_and_bad_window() {
        let spec = CheckSpec::from_json(
            r#"{ "resources": [ { "kind": "cpu", "location": "l1", "rate": 1, "start": 5, "end": 5 } ],
                 "computation": { "name": "x", "start": 0, "deadline": 1, "actors": [] } }"#,
        )
        .unwrap();
        assert!(matches!(spec.resources(), Err(SpecError::Invalid(_))));

        let spec = CheckSpec::from_json(
            r#"{ "resources": [],
                 "computation": { "name": "x", "start": 5, "deadline": 5, "actors": [] } }"#,
        )
        .unwrap();
        let err = spec.computation().unwrap_err();
        assert!(err.to_string().contains("invalid spec"));
    }

    #[test]
    fn default_send_size_is_one() {
        let spec = CheckSpec::from_json(
            r#"{ "resources": [],
                 "computation": { "name": "x", "start": 0, "deadline": 5, "actors": [
                    { "name": "a", "origin": "l1", "actions": [
                        { "do": "send", "to": "b", "dest": "l2" } ] } ] } }"#,
        )
        .unwrap();
        let lambda = spec.computation().unwrap();
        match &lambda.actors()[0].actions()[0] {
            ActionKind::Send { size, .. } => assert_eq!(*size, 1),
            other => panic!("unexpected action {other:?}"),
        }
    }
}
