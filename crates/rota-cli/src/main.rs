//! `rota` — deadline assurance from the command line.
//!
//! ```text
//! rota check <spec.json> [--granularity per-action|maximal-run]
//! rota simulate [--seed N] [--load X] [--nodes N] [--horizon T]
//!               [--shape chain|forkjoin|pipeline|mixed]
//!               [--policy rota|naive|optimistic|edf] [--churn P]
//! rota compare  [--seed N] [--load X] [--nodes N] [--horizon T] [--shape …]
//! ```
//!
//! `check` reads a JSON system+computation spec (see `rota_cli::spec`)
//! and prints the admission verdict with the schedule ROTA would pin the
//! computation to. `simulate` and `compare` run seeded synthetic open
//! -system workloads.

mod formula;
mod spec;

use std::process::ExitCode;

use rota_actor::Granularity;
use rota_admission::{
    AdmissionPolicy, AdmissionRequest, Decision, GreedyEdfPolicy, NaiveTotalPolicy,
    OptimisticPolicy, RotaPolicy,
};
use rota_interval::TimePoint;
use rota_logic::State;
use rota_sim::{compare_policies, run_scenario_traced};
use rota_workload::{build_scenario, JobShape, WorkloadConfig};

use spec::CheckSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("holds") => cmd_holds(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..], false),
        Some("compare") => cmd_simulate(&args[1..], true),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("rota — temporal reasoning about resources for deadline assurance");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  rota check <spec.json> [--granularity per-action|maximal-run]");
    eprintln!("  rota simulate [--seed N] [--load X] [--nodes N] [--horizon T]");
    eprintln!("                [--shape chain|forkjoin|pipeline|mixed]");
    eprintln!("                [--policy rota|naive|optimistic|edf] [--churn P]");
    eprintln!("  rota compare  [same options as simulate, runs all policies]");
    eprintln!("  rota holds <spec.json> --formula \"<formula>\" [--depth N]");
    eprintln!("  rota holds --resources \"[4]^(0,20)_cpu@l1; …\" --formula \"…\"");
    eprintln!();
    eprintln!("FORMULAS (rota holds):");
    eprintln!("  satisfy(cpu@l1:8 in 0..10)    eventually …    always …    not …");
    eprintln!("  … and …    … or …    satisfy(cpu@l1:8, network@l1->l2:4 in 0..20)");
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("check: missing spec file path");
        return ExitCode::FAILURE;
    };
    let granularity = match flag(args, "--granularity").as_deref() {
        Some("per-action") => Granularity::PerAction,
        Some("maximal-run") | None => Granularity::MaximalRun,
        Some(other) => {
            eprintln!("check: unknown granularity `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CheckSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (theta, lambda) = match (spec.resources(), spec.computation()) {
        (Ok(t), Ok(l)) => (t, l),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("check: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("system Θ     : {theta}");
    println!("computation  : {lambda}");
    let request = AdmissionRequest::price(
        lambda,
        &rota_actor::TableCostModel::paper(),
        granularity,
    );
    println!("requirement  : {}", request.requirement());
    let state = State::new(theta, TimePoint::ZERO);
    match RotaPolicy.decide(&state, &request) {
        Decision::Accept(commitments) => {
            println!("verdict      : ADMISSIBLE — the deadline is assured");
            for c in &commitments {
                println!("  actor {}", c.actor());
                for seg in c.pending() {
                    println!("    {}", seg.requirement());
                }
            }
            println!();
            print_gantt(&commitments, request.window());
            ExitCode::SUCCESS
        }
        Decision::Reject(reason) => {
            println!("verdict      : INFEASIBLE — {reason}");
            ExitCode::from(2)
        }
    }
}

/// Renders the pinned schedule as a per-actor text timeline: digits mark
/// which segment occupies each tick, `·` marks slack.
fn print_gantt(commitments: &[rota_logic::Commitment], window: rota_interval::TimeInterval) {
    let span = window.duration().ticks().min(120); // keep rows terminal-sized
    let start = window.start().ticks();
    println!("schedule     : t{start} … t{} (one column per Δt)", start + span);
    for c in commitments {
        let mut row = String::with_capacity(span as usize);
        for t in start..start + span {
            let tick = TimePoint::new(t);
            let mark = c
                .pending()
                .enumerate()
                .find(|(_, seg)| seg.requirement().window().contains_tick(tick))
                .map(|(i, _)| {
                    char::from_digit(((i + 1) % 36) as u32, 36).unwrap_or('#')
                })
                .unwrap_or('·');
            row.push(mark);
        }
        println!("  {:>10} |{row}|", c.actor().to_string());
    }
}

/// `rota holds`: evaluate a temporal formula against a spec's system
/// state (with its computation admitted first, if one is given and fits).
fn cmd_holds(args: &[String]) -> ExitCode {
    let path = args.first().filter(|a| !a.starts_with("--"));
    let inline = flag(args, "--resources");
    let Some(formula_text) = flag(args, "--formula") else {
        eprintln!("holds: missing --formula");
        return ExitCode::FAILURE;
    };
    let depth = flag(args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64usize);
    let formula = match formula::parse_formula(&formula_text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("holds: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state;
    match (path, inline) {
        (Some(path), _) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("holds: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec = match CheckSpec::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("holds: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let theta = match spec.resources() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("holds: {e}");
                    return ExitCode::FAILURE;
                }
            };
            state = State::new(theta, TimePoint::ZERO);
            // Admit the spec's computation if it fits, so the formula is
            // evaluated against the committed system (Θ_expire semantics).
            if let Ok(lambda) = spec.computation() {
                if !lambda.actors().is_empty() {
                    let request = AdmissionRequest::price(
                        lambda,
                        &rota_actor::TableCostModel::paper(),
                        Granularity::MaximalRun,
                    );
                    match RotaPolicy.decide(&state, &request) {
                        Decision::Accept(commitments) => {
                            for c in commitments {
                                state.accommodate(c).expect("policy checked the guard");
                            }
                            println!("(computation admitted before evaluation)");
                        }
                        Decision::Reject(reason) => {
                            println!("(computation not admitted: {reason})");
                        }
                    }
                }
            }
        }
        (None, Some(inline)) => {
            // `--resources "[5]^(0,3)_cpu@l1; [4]^(0,20)_network@l1->l2"`
            let mut theta = rota_resource::ResourceSet::new();
            for part in inline.split(';').filter(|p| !p.trim().is_empty()) {
                match part.parse::<rota_resource::ResourceTerm>() {
                    Ok(term) => {
                        if let Err(e) = theta.insert(term) {
                            eprintln!("holds: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("holds: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            state = State::new(theta, TimePoint::ZERO);
        }
        (None, None) => {
            eprintln!("holds: provide a spec file or --resources \"[r]^(s,e)_kind@loc; …\"");
            return ExitCode::FAILURE;
        }
    }
    println!("formula : {formula}");
    let checker = rota_logic::ModelChecker::greedy(depth);
    let verdict = checker.holds(&state, &formula);
    println!("verdict : {}", if verdict { "HOLDS" } else { "DOES NOT HOLD" });
    if verdict {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_simulate(args: &[String], compare: bool) -> ExitCode {
    let seed = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7u64);
    let load = flag(args, "--load")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64);
    let nodes = flag(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6usize);
    let horizon = flag(args, "--horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(96u64);
    let churn = flag(args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0f64);
    let shape = match flag(args, "--shape").as_deref() {
        Some("chain") => JobShape::Chain { evals: 3 },
        Some("forkjoin") => JobShape::ForkJoin {
            actors: 2,
            evals_each: 2,
        },
        Some("pipeline") => JobShape::Pipeline { hops: 2 },
        Some("mixed") | None => JobShape::Mixed,
        Some(other) => {
            eprintln!("simulate: unknown shape `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let mut config = WorkloadConfig::new(seed)
        .with_nodes(nodes)
        .with_horizon(horizon)
        .with_shape(shape)
        .with_load(load);
    if churn > 0.0 {
        config = config.with_churn(churn, 12, 3);
    }
    let scenario = build_scenario(&config);
    println!(
        "scenario: seed {seed}, load {load}, {nodes} nodes, horizon {horizon}, {} arrivals",
        scenario.arrival_count()
    );
    if compare {
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>7} {:>12}",
            "policy", "accept%", "miss%", "completed", "util%", "delivered"
        );
        for (name, report) in compare_policies(&scenario) {
            println!(
                "{:<12} {:>7.1}% {:>7.1}% {:>10} {:>6.1}% {:>12}",
                name,
                report.acceptance_rate() * 100.0,
                report.miss_rate() * 100.0,
                report.completed,
                report.utilization() * 100.0,
                report.delivered_units
            );
        }
        return ExitCode::SUCCESS;
    }
    let policy = flag(args, "--policy").unwrap_or_else(|| "rota".into());
    let traced = args.iter().any(|a| a == "--trace");
    let (report, trace) = match policy.as_str() {
        "rota" => run_scenario_traced(
            &scenario,
            RotaPolicy,
            rota_admission::ExecutionStrategy::FirstEntitled,
        ),
        "naive" => run_scenario_traced(
            &scenario,
            NaiveTotalPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
        ),
        "optimistic" => run_scenario_traced(
            &scenario,
            OptimisticPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
        ),
        "edf" => run_scenario_traced(
            &scenario,
            GreedyEdfPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
        ),
        other => {
            eprintln!("simulate: unknown policy `{other}`");
            return ExitCode::FAILURE;
        }
    };
    println!("policy {policy}: {report}");
    println!(
        "utilization {:.1}% ({} of {} offered units delivered), withdrawn {}",
        report.utilization() * 100.0,
        report.delivered_units,
        report.offered_units,
        report.withdrawn
    );
    if traced {
        println!("in-flight : {}", trace.sparkline());
        println!(
            "peak {} in flight; per-tick throughput max {}",
            trace.peak_in_flight(),
            trace.throughput().into_iter().max().unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}
