//! `rota` — deadline assurance from the command line.
//!
//! ```text
//! rota check <spec.json> [--granularity per-action|maximal-run] [--format text|json]
//! rota simulate [--seed N] [--load X] [--nodes N] [--horizon T]
//!               [--shape chain|forkjoin|pipeline|mixed]
//!               [--policy rota|naive|optimistic|edf] [--churn P]
//! rota compare  [--seed N] [--load X] [--nodes N] [--horizon T] [--shape …]
//! rota stats    [--json] [--out <path>]
//! rota serve    [--addr HOST:PORT] [--policy …] [--shards N] [--queue N]
//! rota loadtest [--policy …|all] [--jobs N] [--connections N] [--nodes N]
//! ```
//!
//! `check` reads a JSON system+computation spec (see
//! `rota_server::spec`), runs the `rota-analyze` lint passes over it
//! (stable `R`-coded diagnostics with source spans; errors exit `1`
//! without consulting the policy), and — when the lints pass — prints
//! the admission verdict with the schedule ROTA would pin the
//! computation to (`0` admissible, `2` infeasible). `--format json`
//! emits the diagnostics and verdict as one machine-readable
//! document. `simulate` and `compare`
//! run seeded synthetic open-system workloads. `stats` runs an
//! instrumented demo (admission under overload plus one model-check)
//! and dumps the metrics registry and the decision journal. `serve`
//! runs the sharded TCP admission service; `loadtest` drives one with
//! generated traffic and reports throughput/latency/acceptance. Every
//! subcommand accepts `--metrics-out <path>` to write its run's metric
//! snapshot and decisions as JSON.

#![forbid(unsafe_code)]

mod formula;

use std::net::SocketAddr;
use std::process::ExitCode;

use rota_actor::Granularity;
use rota_admission::{
    AdmissionController, AdmissionObs, AdmissionPolicy, AdmissionRequest, Decision,
    GreedyEdfPolicy, NaiveTotalPolicy, OptimisticPolicy, RotaPolicy,
};
use rota_interval::TimePoint;
use rota_logic::State;
use rota_obs::{DecisionEvent, Json, Registry};
use rota_client::{run_loadtest, Client, HedgeConfig, LoadtestConfig, RetryConfig};
use rota_server::spec::CheckSpec;
use rota_server::{spawn_policy_by_name, FaultPlan, ServerConfig, POLICY_NAMES};
use rota_sim::{run_scenario_observed, run_scenario_traced_observed};
use rota_workload::{base_resources, build_scenario, JobShape, WorkloadConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("holds") => cmd_holds(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..], false),
        Some("compare") => cmd_simulate(&args[1..], true),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        Some("loadtest") => cmd_loadtest(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("rota — temporal reasoning about resources for deadline assurance");
    eprintln!();
    eprintln!("USAGE:");
    eprintln!("  rota check <spec.json> [--granularity per-action|maximal-run]");
    eprintln!("             [--format text|json]   (lint + admission; exits 1 on lint");
    eprintln!("             errors without consulting the policy, 2 on INFEASIBLE)");
    eprintln!("  rota simulate [--seed N] [--load X] [--nodes N] [--horizon T]");
    eprintln!("                [--shape chain|forkjoin|pipeline|mixed]");
    eprintln!("                [--policy rota|naive|optimistic|edf] [--churn P]");
    eprintln!("  rota compare  [same options as simulate, runs all policies]");
    eprintln!("  rota holds <spec.json> --formula \"<formula>\" [--depth N]");
    eprintln!("  rota holds --resources \"[4]^(0,20)_cpu@l1; …\" --formula \"…\"");
    eprintln!("  rota stats    [--json] [--out <path>]");
    eprintln!("  rota serve    [--addr HOST:PORT] [--policy rota|naive|optimistic|edf]");
    eprintln!("                [--shards N] [--queue N] [--nodes N] [--horizon T] [--seed N]");
    eprintln!("                [--chaos seed=N,latency_ms=N,latency_p=P,truncate_p=P,");
    eprintln!("                         corrupt_p=P,reset_p=P,panic_nth=N]");
    eprintln!("  rota cluster  [--nodes N | --topology FILE] [--base-port P] [--seed N]");
    eprintln!("                [--horizon T] [--gossip-ms N] [--redirects] [--shards N]");
    eprintln!("                [--queue N] [--duration-ms N]   (N-node federation; each");
    eprintln!("                node owns its locations, any node accepts any admission)");
    eprintln!("  rota loadtest [--policy rota|naive|optimistic|edf|all] [--nodes N]");
    eprintln!("                [--jobs N] [--connections N] [--shape …] [--shards N]");
    eprintln!("                [--queue N] [--horizon T] [--seed N] [--addr HOST:PORT]");
    eprintln!("                [--cluster N] [--chaos <spec as above>]");
    eprintln!();
    eprintln!("loadtest --seed N also makes the request schedule deterministic");
    eprintln!("(static round-robin partition); --chaos turns on the retrying,");
    eprintln!("hedging client so injected faults are ridden out, not tallied.");
    eprintln!();
    eprintln!("Every subcommand also accepts --metrics-out <path> to dump its");
    eprintln!("metric snapshot and decision journal as JSON.");
    eprintln!();
    eprintln!("FORMULAS (rota holds):");
    eprintln!("  satisfy(cpu@l1:8 in 0..10)    eventually …    always …    not …");
    eprintln!("  … and …    … or …    satisfy(cpu@l1:8, network@l1->l2:4 in 0..20)");
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Packages a registry snapshot plus decision journal as one JSON value:
/// `{"metrics": {...}, "decisions": [...]}`.
fn observability_json(registry: &Registry, decisions: &[DecisionEvent]) -> Json {
    Json::Obj(vec![
        ("metrics".to_string(), registry.snapshot().to_json()),
        (
            "decisions".to_string(),
            Json::Arr(decisions.iter().map(DecisionEvent::to_json).collect()),
        ),
    ])
}

/// Honors `--metrics-out <path>`: writes the run's observability JSON.
/// Returns `false` (printing an error) when the write fails.
fn write_metrics_out(args: &[String], registry: &Registry, decisions: &[DecisionEvent]) -> bool {
    let Some(path) = flag(args, "--metrics-out") else {
        return true;
    };
    let payload = observability_json(registry, decisions).pretty();
    match std::fs::write(&path, payload + "\n") {
        Ok(()) => {
            eprintln!("(metrics written to {path})");
            true
        }
        Err(e) => {
            eprintln!("cannot write metrics to {path}: {e}");
            false
        }
    }
}

fn cmd_check(args: &[String]) -> ExitCode {
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("check: missing spec file path");
        return ExitCode::FAILURE;
    };
    let granularity = match flag(args, "--granularity").as_deref() {
        Some("per-action") => Granularity::PerAction,
        Some("maximal-run") | None => Granularity::MaximalRun,
        Some(other) => {
            eprintln!("check: unknown granularity `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let format_json = match flag(args, "--format").as_deref() {
        Some("json") => true,
        Some("text") | None => false,
        Some(other) => {
            eprintln!("check: unknown format `{other}`, expected `text` or `json`");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = match CheckSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("check: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Static analysis before any admission machinery: the lint passes
    // see the declarations as written, including content the library
    // types refuse to represent, and anchor findings to source spans.
    let report = rota_analyze::analyze_with(
        &spec.analysis_model(),
        &rota_actor::TableCostModel::paper(),
        granularity,
    );
    if format_json {
        let (verdict, code) = if report.has_errors() {
            ("lint-error", ExitCode::FAILURE)
        } else {
            match check_verdict(&spec, granularity, args, true) {
                Ok(code) if code == ExitCode::SUCCESS => ("admissible", code),
                Ok(code) => ("infeasible", code),
                Err(code) => return code,
            }
        };
        println!(
            "{}",
            Json::Obj(vec![
                ("file".into(), Json::Str(path.clone())),
                ("verdict".into(), Json::Str(verdict.into())),
                (
                    "errors".into(),
                    Json::Num(report.count(rota_analyze::Severity::Error) as f64),
                ),
                (
                    "warnings".into(),
                    Json::Num(report.count(rota_analyze::Severity::Warning) as f64),
                ),
                ("diagnostics".into(), report.to_json(Some(&text))),
            ])
            .pretty()
        );
        return code;
    }
    let rendered = report.render(Some(path), Some(&text));
    if !rendered.is_empty() {
        eprint!("{rendered}");
    }
    if report.has_errors() {
        eprintln!("check: spec has lint errors; admission not attempted");
        return ExitCode::FAILURE;
    }
    match check_verdict(&spec, granularity, args, false) {
        Ok(code) | Err(code) => code,
    }
}

/// Prices the spec and asks the admission controller for a verdict,
/// printing the human report unless `quiet`. `Ok` carries the exit
/// code for a decided spec (success or the INFEASIBLE `2`); `Err`
/// carries the code for a spec that could not be decided at all.
fn check_verdict(
    spec: &CheckSpec,
    granularity: Granularity,
    args: &[String],
    quiet: bool,
) -> Result<ExitCode, ExitCode> {
    let (theta, lambda) = match (spec.resources(), spec.computation()) {
        (Ok(t), Ok(l)) => (t, l),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("check: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    if !quiet {
        println!("system Θ     : {theta}");
        println!("computation  : {lambda}");
    }
    let request = AdmissionRequest::price(
        lambda,
        &rota_actor::TableCostModel::paper(),
        granularity,
    );
    if !quiet {
        println!("requirement  : {}", request.requirement());
    }
    // Decide through an instrumented controller so --metrics-out captures
    // the decision counters and the journal's explanation.
    let registry = Registry::new();
    let mut ctl = AdmissionController::new(RotaPolicy, theta, TimePoint::ZERO)
        .with_obs(AdmissionObs::new(&registry, RotaPolicy.name()));
    let decision = ctl.submit(&request);
    let code = match &decision {
        Decision::Accept(commitments) => {
            if !quiet {
                println!("verdict      : ADMISSIBLE — the deadline is assured");
                for c in commitments {
                    println!("  actor {}", c.actor());
                    for seg in c.pending() {
                        println!("    {}", seg.requirement());
                    }
                }
                println!();
                print_gantt(commitments, request.window());
            }
            ExitCode::SUCCESS
        }
        Decision::Reject(reason) => {
            if !quiet {
                println!("verdict      : INFEASIBLE — {reason}");
                if let Some(term) = reason.violated_term() {
                    println!("violated     : {term} ({})", reason.clause());
                }
            }
            ExitCode::from(2)
        }
    };
    if !write_metrics_out(args, &registry, &ctl.explain()) {
        return Err(ExitCode::FAILURE);
    }
    Ok(code)
}

/// Renders the pinned schedule as a per-actor text timeline: digits mark
/// which segment occupies each tick, `·` marks slack.
fn print_gantt(commitments: &[rota_logic::Commitment], window: rota_interval::TimeInterval) {
    let span = window.duration().ticks().min(120); // keep rows terminal-sized
    let start = window.start().ticks();
    println!("schedule     : t{start} … t{} (one column per Δt)", start + span);
    for c in commitments {
        let mut row = String::with_capacity(span as usize);
        for t in start..start + span {
            let tick = TimePoint::new(t);
            let mark = c
                .pending()
                .enumerate()
                .find(|(_, seg)| seg.requirement().window().contains_tick(tick))
                .map(|(i, _)| {
                    char::from_digit(((i + 1) % 36) as u32, 36).unwrap_or('#')
                })
                .unwrap_or('·');
            row.push(mark);
        }
        println!("  {:>10} |{row}|", c.actor().to_string());
    }
}

/// `rota holds`: evaluate a temporal formula against a spec's system
/// state (with its computation admitted first, if one is given and fits).
fn cmd_holds(args: &[String]) -> ExitCode {
    let path = args.first().filter(|a| !a.starts_with("--"));
    let inline = flag(args, "--resources");
    let Some(formula_text) = flag(args, "--formula") else {
        eprintln!("holds: missing --formula");
        return ExitCode::FAILURE;
    };
    let depth = flag(args, "--depth")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64usize);
    let formula = match formula::parse_formula(&formula_text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("holds: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut state;
    match (path, inline) {
        (Some(path), _) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("holds: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let spec = match CheckSpec::from_json(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("holds: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let theta = match spec.resources() {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("holds: {e}");
                    return ExitCode::FAILURE;
                }
            };
            state = State::new(theta, TimePoint::ZERO);
            // Admit the spec's computation if it fits, so the formula is
            // evaluated against the committed system (Θ_expire semantics).
            if let Ok(lambda) = spec.computation() {
                if !lambda.actors().is_empty() {
                    let request = AdmissionRequest::price(
                        lambda,
                        &rota_actor::TableCostModel::paper(),
                        Granularity::MaximalRun,
                    );
                    match RotaPolicy.decide(&state, &request) {
                        Decision::Accept(commitments) => {
                            for c in commitments {
                                state.accommodate(c).expect("policy checked the guard");
                            }
                            println!("(computation admitted before evaluation)");
                        }
                        Decision::Reject(reason) => {
                            println!("(computation not admitted: {reason})");
                        }
                    }
                }
            }
        }
        (None, Some(inline)) => {
            // `--resources "[5]^(0,3)_cpu@l1; [4]^(0,20)_network@l1->l2"`
            let mut theta = rota_resource::ResourceSet::new();
            for part in inline.split(';').filter(|p| !p.trim().is_empty()) {
                match part.parse::<rota_resource::ResourceTerm>() {
                    Ok(term) => {
                        if let Err(e) = theta.insert(term) {
                            eprintln!("holds: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("holds: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            state = State::new(theta, TimePoint::ZERO);
        }
        (None, None) => {
            eprintln!("holds: provide a spec file or --resources \"[r]^(s,e)_kind@loc; …\"");
            return ExitCode::FAILURE;
        }
    }
    println!("formula : {formula}");
    let registry = Registry::new();
    let journal = std::sync::Arc::new(rota_obs::Journal::new(16));
    let checker = rota_logic::ModelChecker::greedy(depth).with_obs(
        rota_logic::CheckObs::new(&registry).with_journal(std::sync::Arc::clone(&journal)),
    );
    let verdict = checker.check(&state, &formula);
    println!("verdict : {}", if verdict { "HOLDS" } else { "DOES NOT HOLD" });
    let decisions = journal.snapshot();
    if let Some(DecisionEvent::ModelCheck {
        falsifying_prefix, ..
    }) = decisions.last()
    {
        if !falsifying_prefix.is_empty() {
            println!("falsified after:");
            for (i, step) in falsifying_prefix.iter().enumerate() {
                println!("  {i:>3}. {step}");
            }
        }
    }
    if !write_metrics_out(args, &registry, &decisions) {
        return ExitCode::FAILURE;
    }
    if verdict {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn cmd_simulate(args: &[String], compare: bool) -> ExitCode {
    let seed = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7u64);
    let load = flag(args, "--load")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0f64);
    let nodes = flag(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(6usize);
    let horizon = flag(args, "--horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(96u64);
    let churn = flag(args, "--churn")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0f64);
    let shape = match flag(args, "--shape").as_deref() {
        Some("chain") => JobShape::Chain { evals: 3 },
        Some("forkjoin") => JobShape::ForkJoin {
            actors: 2,
            evals_each: 2,
        },
        Some("pipeline") => JobShape::Pipeline { hops: 2 },
        Some("mixed") | None => JobShape::Mixed,
        Some(other) => {
            eprintln!("simulate: unknown shape `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let mut config = WorkloadConfig::new(seed)
        .with_nodes(nodes)
        .with_horizon(horizon)
        .with_shape(shape)
        .with_load(load);
    if churn > 0.0 {
        config = config.with_churn(churn, 12, 3);
    }
    let scenario = build_scenario(&config);
    println!(
        "scenario: seed {seed}, load {load}, {nodes} nodes, horizon {horizon}, {} arrivals",
        scenario.arrival_count()
    );
    let registry = Registry::new();
    if compare {
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>7} {:>12}",
            "policy", "accept%", "miss%", "completed", "util%", "delivered"
        );
        let mut decisions = Vec::new();
        for (name, report) in compare_policies_observed(&scenario, &registry) {
            println!(
                "{:<12} {:>7.1}% {:>7.1}% {:>10} {:>6.1}% {:>12}",
                name,
                report.acceptance_rate() * 100.0,
                report.miss_rate() * 100.0,
                report.completed,
                report.utilization() * 100.0,
                report.delivered_units
            );
            decisions.extend(report.decisions);
        }
        if !write_metrics_out(args, &registry, &decisions) {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let policy = flag(args, "--policy").unwrap_or_else(|| "rota".into());
    let traced = args.iter().any(|a| a == "--trace");
    let (report, trace) = match policy.as_str() {
        "rota" => run_scenario_traced_observed(
            &scenario,
            RotaPolicy,
            rota_admission::ExecutionStrategy::FirstEntitled,
            &registry,
        ),
        "naive" => run_scenario_traced_observed(
            &scenario,
            NaiveTotalPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
            &registry,
        ),
        "optimistic" => run_scenario_traced_observed(
            &scenario,
            OptimisticPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
            &registry,
        ),
        "edf" => run_scenario_traced_observed(
            &scenario,
            GreedyEdfPolicy,
            rota_admission::ExecutionStrategy::EarliestDeadline,
            &registry,
        ),
        other => {
            eprintln!("simulate: unknown policy `{other}`");
            return ExitCode::FAILURE;
        }
    };
    println!("policy {policy}: {report}");
    println!(
        "utilization {:.1}% ({} of {} offered units delivered), withdrawn {}",
        report.utilization() * 100.0,
        report.delivered_units,
        report.offered_units,
        report.withdrawn
    );
    if traced {
        println!("in-flight : {}", trace.sparkline());
        println!(
            "peak {} in flight; per-tick throughput max {}",
            trace.peak_in_flight(),
            trace.throughput().into_iter().max().unwrap_or(0)
        );
    }
    if !write_metrics_out(args, &registry, &report.decisions) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// [`compare_policies`] with every run counting into one registry (the
/// per-policy metric labels keep them apart).
fn compare_policies_observed(
    scenario: &rota_sim::Scenario,
    registry: &Registry,
) -> Vec<(&'static str, rota_sim::SimulationReport)> {
    use rota_admission::ExecutionStrategy;
    vec![
        (
            "rota",
            run_scenario_observed(scenario, RotaPolicy, ExecutionStrategy::FirstEntitled, registry),
        ),
        (
            "greedy-edf",
            run_scenario_observed(
                scenario,
                GreedyEdfPolicy,
                ExecutionStrategy::EarliestDeadline,
                registry,
            ),
        ),
        (
            "naive-total",
            run_scenario_observed(
                scenario,
                NaiveTotalPolicy,
                ExecutionStrategy::EarliestDeadline,
                registry,
            ),
        ),
        (
            "optimistic",
            run_scenario_observed(
                scenario,
                OptimisticPolicy,
                ExecutionStrategy::EarliestDeadline,
                registry,
            ),
        ),
    ]
}

/// `rota stats`: run a small fully-instrumented demo — an overloaded
/// admission scenario (2 of 8 requests fit) plus one bounded model-check
/// — and dump the resulting metric snapshot and decision journal.
fn cmd_stats(args: &[String]) -> ExitCode {
    use rota_actor::{ActionKind, ActorComputation, DistributedComputation, TableCostModel};
    use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};

    let registry = Registry::new();

    // Admission under overload: 32 cpu-units of capacity, 8 jobs of 16
    // units each → 2 admitted, 6 rejected with the violated term named.
    let theta: ResourceSet = [ResourceTerm::new(
        Rate::new(4),
        rota_interval::TimeInterval::from_ticks(0, 8).expect("static interval"),
        LocatedType::cpu(Location::new("l1")),
    )]
    .into_iter()
    .collect();
    let mut scenario = rota_sim::Scenario::new(TimePoint::new(8)).with_initial(theta.clone());
    for i in 0..8 {
        let mut gamma = ActorComputation::new(format!("job{i}-actor"), "l1");
        for _ in 0..2 {
            gamma.push(ActionKind::evaluate());
        }
        let request = AdmissionRequest::price(
            DistributedComputation::single(
                format!("job{i}"),
                gamma,
                TimePoint::ZERO,
                TimePoint::new(8),
            )
            .expect("static computation"),
            &TableCostModel::paper(),
            Granularity::MaximalRun,
        );
        scenario.add_arrival(TimePoint::ZERO, request);
    }
    let report = run_scenario_observed(
        &scenario,
        RotaPolicy,
        rota_admission::ExecutionStrategy::FirstEntitled,
        &registry,
    );
    let mut decisions = report.decisions;

    // One model-check run, so LTS rule-firing counts appear: the demand
    // that was admissible must be deliverable on every path.
    let journal = std::sync::Arc::new(rota_obs::Journal::new(16));
    let checker = rota_logic::ModelChecker::greedy(16).with_obs(
        rota_logic::CheckObs::new(&registry).with_journal(std::sync::Arc::clone(&journal)),
    );
    let formula = formula::parse_formula("always satisfy(cpu@l1:4 in 0..8)")
        .expect("static demo formula");
    let state = State::new(theta, TimePoint::ZERO);
    let _ = checker.check(&state, &formula);
    decisions.extend(journal.snapshot());

    let json = args.iter().any(|a| a == "--json");
    let rendered = if json {
        observability_json(&registry, &decisions).pretty() + "\n"
    } else {
        let mut out = registry.snapshot().render_table();
        out.push_str("\ndecisions:\n");
        for event in &decisions {
            out.push_str("  ");
            out.push_str(&event.summary());
            out.push('\n');
        }
        out
    };
    match flag(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &rendered) {
                eprintln!("stats: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("(stats written to {path})");
        }
        None => print!("{rendered}"),
    }
    if !write_metrics_out(args, &registry, &decisions) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Workload + server knobs shared by `serve` and `loadtest`.
/// Resources served are `base_resources` of this workload config, so a
/// loadtest generated from the same flags targets exactly the capacity
/// the server holds.
fn service_workload(args: &[String], command: &str) -> Result<WorkloadConfig, ExitCode> {
    let seed = flag(args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(7u64);
    let nodes = flag(args, "--nodes")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let horizon = flag(args, "--horizon")
        .and_then(|v| v.parse().ok())
        .unwrap_or(96u64);
    let slack = flag(args, "--slack")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0f64);
    let shape = match flag(args, "--shape").as_deref() {
        Some("chain") => JobShape::Chain { evals: 3 },
        Some("forkjoin") => JobShape::ForkJoin {
            actors: 2,
            evals_each: 2,
        },
        Some("pipeline") => JobShape::Pipeline { hops: 2 },
        Some("mixed") | None => JobShape::Mixed,
        Some(other) => {
            eprintln!("{command}: unknown shape `{other}`");
            return Err(ExitCode::FAILURE);
        }
    };
    Ok(WorkloadConfig::new(seed)
        .with_nodes(nodes)
        .with_horizon(horizon)
        .with_shape(shape)
        .with_slack(slack))
}

fn server_config(args: &[String], addr: SocketAddr, command: &str) -> Result<ServerConfig, ExitCode> {
    let mut config = ServerConfig {
        addr,
        ..ServerConfig::default()
    };
    if let Some(shards) = flag(args, "--shards").and_then(|v| v.parse().ok()) {
        config.shards = shards;
    }
    if let Some(queue) = flag(args, "--queue").and_then(|v| v.parse().ok()) {
        config.queue_capacity = queue;
    }
    if let Some(spec) = flag(args, "--chaos") {
        match FaultPlan::parse(&spec) {
            Ok(plan) => config.fault_plan = Some(plan),
            Err(e) => {
                eprintln!("{command}: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(config)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let policy = flag(args, "--policy").unwrap_or_else(|| "rota".into());
    let addr: SocketAddr = match flag(args, "--addr")
        .unwrap_or_else(|| "127.0.0.1:7463".into())
        .parse()
    {
        Ok(addr) => addr,
        Err(e) => {
            eprintln!("serve: bad --addr: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workload = match service_workload(args, "serve") {
        Ok(w) => w,
        Err(code) => return code,
    };
    let theta = base_resources(&workload);
    let config = match server_config(args, addr, "serve") {
        Ok(config) => config,
        Err(code) => return code,
    };
    let shards = config.shards;
    let queue = config.queue_capacity;
    let chaos = config.fault_plan.clone();
    let handle = match spawn_policy_by_name(&policy, config, &theta) {
        Some(Ok(handle)) => handle,
        Some(Err(e)) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
        None => {
            eprintln!(
                "serve: unknown policy `{policy}` (expected one of {})",
                POLICY_NAMES.join("|")
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serving `{policy}` admission on {} — {} shards, queue {} each, {} resource terms over {} nodes",
        handle.local_addr(),
        shards,
        queue,
        theta.term_count(),
        workload.nodes,
    );
    if let Some(plan) = chaos {
        println!(
            "CHAOS MODE: injecting faults under seed {} ({plan:?})",
            plan.seed
        );
    }
    println!("send {{\"op\":\"shutdown\"}} (or drop the process) to stop; draining is graceful");
    handle.wait();
    println!("drained; bye");
    ExitCode::SUCCESS
}

/// Builds a [`rota_cluster::ClusterConfig`] from the shared flags.
fn cluster_config(args: &[String], seed: u64) -> rota_cluster::ClusterConfig {
    let mut config = rota_cluster::ClusterConfig {
        seed,
        ..rota_cluster::ClusterConfig::default()
    };
    if let Some(ms) = flag(args, "--gossip-ms").and_then(|v| v.parse().ok()) {
        config.gossip_interval = std::time::Duration::from_millis(ms);
    }
    if args.iter().any(|a| a == "--redirects") {
        config.redirects = true;
    }
    if let Some(shards) = flag(args, "--shards").and_then(|v| v.parse().ok()) {
        config.shards = shards;
    }
    if let Some(queue) = flag(args, "--queue").and_then(|v| v.parse().ok()) {
        config.queue_capacity = queue;
    }
    config
}

/// `rota cluster`: run an N-node federation in this process. Each node
/// is a full rota-server owning a disjoint slice of the locations;
/// gossip keeps the peers' liveness and supply views fresh, and any
/// node accepts any admission (forwarding or two-phase committing
/// cross-location demand).
fn cmd_cluster(args: &[String]) -> ExitCode {
    use rota_cluster::{Cluster, Topology};

    let workload = match service_workload(args, "cluster") {
        Ok(w) => w,
        Err(code) => return code,
    };
    let (mut topology, theta) = match flag(args, "--topology") {
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cluster: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let topology = match Topology::parse(&text) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cluster: {e}");
                    return ExitCode::FAILURE;
                }
            };
            // A file topology names its own locations, so the workload
            // supply shape does not apply: serve per-location CPU at
            // the workload node rate; links can be added via `offer`.
            let horizon = rota_interval::TimeInterval::from_ticks(0, workload.horizon.max(1))
                .expect("horizon ≥ 1");
            let theta: rota_resource::ResourceSet = topology
                .locations()
                .into_iter()
                .map(|location| {
                    rota_resource::ResourceTerm::new(
                        rota_resource::Rate::new(workload.node_rate),
                        horizon,
                        rota_resource::LocatedType::cpu(rota_resource::Location::new(location)),
                    )
                })
                .collect();
            (topology, theta)
        }
        None => (
            Topology::auto(workload.nodes.max(1)),
            base_resources(&workload),
        ),
    };
    // `--base-port P` pins node addresses to consecutive ports; nodes
    // whose topology entry already names an address keep it.
    if let Some(base) = flag(args, "--base-port").and_then(|v| v.parse::<u16>().ok()) {
        let unbound: Vec<String> = topology
            .nodes()
            .iter()
            .filter(|n| n.addr.is_empty())
            .map(|n| n.id.clone())
            .collect();
        for (i, id) in unbound.iter().enumerate() {
            topology.set_addr(id, &format!("127.0.0.1:{}", base.saturating_add(i as u16)));
        }
    }
    let config = cluster_config(args, workload.seed);
    let gossip_ms = config.gossip_interval.as_millis();
    let cluster = match Cluster::launch(topology, &theta, RotaPolicy, config) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "cluster: {} nodes, {} resource terms, gossip every {}ms (seed {})",
        cluster.nodes().len(),
        theta.term_count(),
        gossip_ms,
        workload.seed,
    );
    {
        let topology = cluster
            .topology()
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        for node in cluster.nodes() {
            let locations = topology
                .node(node.id())
                .map(|s| s.locations.join(","))
                .unwrap_or_default();
            println!("  {} @ {} owns {}", node.id(), node.addr(), locations);
        }
    }
    if cluster.await_converged(std::time::Duration::from_secs(10)) {
        println!("gossip converged; every node sees every peer alive");
    } else {
        eprintln!("warning: gossip has not converged after 10s; serving anyway");
    }
    println!("admit at any node: owners decide locally, cross-location demand two-phase commits");
    match flag(args, "--duration-ms").and_then(|v| v.parse::<u64>().ok()) {
        Some(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            cluster.shutdown();
            println!("duration elapsed; cluster stopped");
        }
        None => {
            println!("(drop the process to stop)");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(1));
            }
        }
    }
    ExitCode::SUCCESS
}

/// Sums every `cluster.*` counter across the nodes' metric snapshots:
/// `(name, total)` pairs, name stripped of the `cluster.` prefix.
fn cluster_counter_sums(addrs: &[SocketAddr]) -> Vec<(String, u64)> {
    let mut sums: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for addr in addrs {
        let Ok(snapshot) = Client::connect(*addr).and_then(|mut c| c.metrics()) else {
            continue;
        };
        let Json::Obj(entries) = snapshot else { continue };
        for (name, metric) in entries {
            let Some(rest) = name.strip_prefix("cluster.") else {
                continue;
            };
            if metric.get("kind").and_then(Json::as_str) != Some("counter") {
                continue;
            }
            let value = metric.get("value").and_then(Json::as_f64).unwrap_or(0.0);
            *sums.entry(rest.to_string()).or_default() += value as u64;
        }
    }
    sums.into_iter().collect()
}

/// `rota loadtest --cluster N`: drive an ephemeral in-process N-node
/// federation, connections spread round-robin over the nodes, and
/// report the routing/2PC work alongside the usual latency numbers.
fn run_cluster_loadtest(
    args: &[String],
    nodes: usize,
    workload: &WorkloadConfig,
    jobs: usize,
    connections: usize,
    granularity: Granularity,
    deterministic: bool,
) -> ExitCode {
    use rota_cluster::{Cluster, Topology};

    // The workload's locations must be exactly the cluster's, so the
    // node count wins over `--nodes`.
    let workload = workload.clone().with_nodes(nodes);
    let theta = base_resources(&workload);
    let cluster = match Cluster::launch(
        Topology::auto(nodes),
        &theta,
        RotaPolicy,
        cluster_config(args, workload.seed),
    ) {
        Ok(cluster) => cluster,
        Err(e) => {
            eprintln!("loadtest: cannot launch cluster: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !cluster.await_converged(std::time::Duration::from_secs(10)) {
        eprintln!("loadtest: cluster gossip failed to converge");
        cluster.shutdown();
        return ExitCode::FAILURE;
    }
    let addrs = cluster.addrs();
    let config = LoadtestConfig {
        addr: addrs[0],
        cluster: addrs.clone(),
        connections,
        jobs,
        workload: workload.clone(),
        granularity,
        deterministic,
        retry: None,
        hedge: None,
    };
    let report = match run_loadtest(&config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadtest: {e}");
            cluster.shutdown();
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render(&format!("rota ({nodes}-node cluster)")));
    for (i, addr) in addrs.iter().enumerate() {
        match Client::connect(*addr).and_then(|mut c| c.stats()) {
            Ok((stats, shards)) => println!(
                "  node{i}        {} accepted / {} rejected across {} shard(s)",
                stats.accepted, stats.rejected, shards
            ),
            Err(e) => println!("  node{i}        (stats unavailable: {e})"),
        }
    }
    let counters = cluster_counter_sums(&addrs);
    if !counters.is_empty() {
        let rendered: Vec<String> = counters
            .into_iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        println!("  cluster      {}", rendered.join(" "));
    }
    println!();
    cluster.shutdown();
    ExitCode::SUCCESS
}

fn cmd_loadtest(args: &[String]) -> ExitCode {
    let policy_flag = flag(args, "--policy").unwrap_or_else(|| "rota".into());
    let policies: Vec<&str> = if policy_flag == "all" {
        POLICY_NAMES.to_vec()
    } else if POLICY_NAMES.contains(&policy_flag.as_str()) {
        vec![policy_flag.as_str()]
    } else {
        eprintln!(
            "loadtest: unknown policy `{policy_flag}` (expected one of {}|all)",
            POLICY_NAMES.join("|")
        );
        return ExitCode::FAILURE;
    };
    let workload = match service_workload(args, "loadtest") {
        Ok(w) => w,
        Err(code) => return code,
    };
    let jobs = flag(args, "--jobs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(400usize);
    let connections = flag(args, "--connections")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4usize);
    let granularity = match flag(args, "--granularity").as_deref() {
        Some("per-action") => Granularity::PerAction,
        Some("maximal-run") | None => Granularity::MaximalRun,
        Some(other) => {
            eprintln!("loadtest: unknown granularity `{other}`");
            return ExitCode::FAILURE;
        }
    };
    let external: Option<SocketAddr> = match flag(args, "--addr") {
        Some(text) => match text.parse() {
            Ok(addr) => Some(addr),
            Err(e) => {
                eprintln!("loadtest: bad --addr: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if external.is_some() && policies.len() > 1 {
        eprintln!("loadtest: --addr drives one external server; pick a single --policy");
        return ExitCode::FAILURE;
    }
    if let Some(text) = flag(args, "--cluster") {
        let nodes = match text.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("loadtest: --cluster needs a node count ≥ 1");
                return ExitCode::FAILURE;
            }
        };
        if external.is_some() {
            eprintln!("loadtest: --cluster spawns its own nodes; drop --addr");
            return ExitCode::FAILURE;
        }
        if policy_flag != "rota" {
            eprintln!("loadtest: --cluster federates the rota policy; drop --policy");
            return ExitCode::FAILURE;
        }
        if flag(args, "--chaos").is_some() {
            eprintln!("loadtest: --chaos is per-server; not supported with --cluster");
            return ExitCode::FAILURE;
        }
        let deterministic = args.iter().any(|a| a == "--seed");
        return run_cluster_loadtest(
            args,
            nodes,
            &workload,
            jobs,
            connections,
            granularity,
            deterministic,
        );
    }
    let theta = base_resources(&workload);
    // `--seed` pins the whole run: the same flag set replays the exact
    // same per-connection request schedule (static partition).
    let deterministic = args.iter().any(|a| a == "--seed");
    // `--chaos` arms the server's fault injector *and* the client's
    // retry/hedge layer — injected faults get ridden out, and the
    // report shows how much riding was needed.
    let chaos = flag(args, "--chaos").is_some();
    for policy in policies {
        // Spawn a fresh in-process server per policy unless the caller
        // points us at an external one.
        let handle = match external {
            Some(_) => None,
            None => {
                let config = match server_config(
                    args,
                    "127.0.0.1:0".parse().expect("static addr"),
                    "loadtest",
                ) {
                    Ok(config) => config,
                    Err(code) => return code,
                };
                match spawn_policy_by_name(policy, config, &theta) {
                    Some(Ok(handle)) => Some(handle),
                    Some(Err(e)) => {
                        eprintln!("loadtest: cannot spawn server: {e}");
                        return ExitCode::FAILURE;
                    }
                    None => unreachable!("policy validated above"),
                }
            }
        };
        let addr = external.unwrap_or_else(|| handle.as_ref().expect("spawned").local_addr());
        let config = LoadtestConfig {
            addr,
            cluster: Vec::new(),
            connections,
            jobs,
            workload: workload.clone(),
            granularity,
            deterministic,
            retry: chaos.then(|| RetryConfig {
                max_attempts: 8,
                seed: workload.seed,
                ..RetryConfig::default()
            }),
            hedge: chaos.then(HedgeConfig::default),
        };
        let report = match run_loadtest(&config) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("loadtest: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", report.render(policy));
        match Client::connect(addr).and_then(|mut c| c.stats()) {
            Ok((stats, shards)) => println!(
                "  server side  {} accepted / {} rejected across {} shard(s)\n",
                stats.accepted, stats.rejected, shards
            ),
            Err(e) => println!("  server side  (stats unavailable: {e})\n"),
        }
        if let Some(handle) = handle {
            handle.shutdown();
        }
    }
    ExitCode::SUCCESS
}
