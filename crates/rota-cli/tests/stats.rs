//! Integration tests for the observability surface: `rota-cli stats`
//! and `--metrics-out` must emit a JSON snapshot containing per-policy
//! admission counters, LTS rule-firing counts from a model-check run,
//! and at least one rejection `DecisionEvent` naming the violated
//! resource term.

use std::process::Command;

use rota_obs::Json;

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_rota-cli"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get(name)
        .and_then(|m| m.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("metric {name} missing from snapshot"))
}

#[test]
fn stats_json_covers_the_acceptance_criteria() {
    let (stdout, _, ok) = run_cli(&["stats", "--json"]);
    assert!(ok, "stats exits zero");
    let doc = Json::parse(&stdout).expect("stats --json emits valid JSON");
    let metrics = doc.get("metrics").expect("snapshot present");

    // Per-policy admission accept/reject counters.
    assert_eq!(counter(metrics, "admission.requests{policy=rota}"), 8);
    assert_eq!(counter(metrics, "admission.accepted{policy=rota}"), 2);
    assert_eq!(counter(metrics, "admission.rejected{policy=rota}"), 6);

    // LTS rule-firing counts from one model-checking run: the demo
    // checks an uncommitted system, so expiration steps dominate.
    let rule_total: u64 = [
        "sequential",
        "concurrent",
        "expiration",
        "concurrent_expiration",
        "general",
        "acquisition",
        "accommodation",
        "leave",
    ]
    .iter()
    .map(|rule| counter(metrics, &format!("logic.rule.{rule}")))
    .sum();
    assert!(rule_total > 0, "model check fired LTS rules");
    assert!(counter(metrics, "logic.states_visited") > 0);

    // ≥1 DecisionEvent with the violated resource term for a rejection.
    let decisions = doc
        .get("decisions")
        .and_then(Json::as_array)
        .expect("decisions present");
    assert!(!decisions.is_empty());
    let violated: Vec<&Json> = decisions
        .iter()
        .filter(|d| {
            d.get("accepted").and_then(Json::as_bool) == Some(false)
                && d.get("violated_term").and_then(Json::as_str).is_some()
        })
        .collect();
    assert!(
        !violated.is_empty(),
        "a rejected admission names its violated term"
    );
    let term = violated[0]
        .get("violated_term")
        .and_then(Json::as_str)
        .unwrap();
    assert!(term.contains("cpu"), "term names the resource: {term}");
    assert!(term.contains("short by"), "term names the shortfall: {term}");
    let clause = violated[0].get("clause").and_then(Json::as_str).unwrap();
    assert!(clause.contains("Theorem 4"), "clause cites the theorem");
}

#[test]
fn stats_table_lists_metrics_and_decisions() {
    let (stdout, _, ok) = run_cli(&["stats"]);
    assert!(ok);
    assert!(stdout.contains("admission.accepted{policy=rota}"));
    assert!(stdout.contains("logic.states_visited"));
    assert!(stdout.contains("decisions:"));
    assert!(stdout.contains("reject"));
}

#[test]
fn simulate_metrics_out_writes_snapshot() {
    let dir = std::env::temp_dir().join("rota-cli-test-metrics");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sim-metrics.json");
    let path_str = path.to_str().unwrap();
    let (_, stderr, ok) = run_cli(&[
        "simulate",
        "--seed",
        "7",
        "--load",
        "2.0",
        "--horizon",
        "48",
        "--metrics-out",
        path_str,
    ]);
    assert!(ok, "simulate exits zero: {stderr}");
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = Json::parse(&text).expect("metrics file is valid JSON");
    let metrics = doc.get("metrics").expect("snapshot present");
    assert!(counter(metrics, "admission.requests{policy=rota}") > 0);
    assert!(metrics.get("sim.events_processed").is_some());
    assert!(metrics.get("sim.queue_depth").is_some());
    assert!(doc.get("decisions").and_then(Json::as_array).is_some());
    std::fs::remove_file(&path).ok();
}
