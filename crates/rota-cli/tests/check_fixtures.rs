//! Golden-file tests for `rota-cli check` over the lint fixtures.
//!
//! Each fixture under `tests/fixtures/` triggers exactly one lint code
//! (plus any codes that necessarily co-fire) with a known exit status;
//! `clean.json` triggers none. The table below is the contract the
//! `just check-fixtures` recipe re-verifies: running the real binary,
//! parsing its `--format json` output, and comparing the emitted code
//! set and exit code against the expectation.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::Command;

use rota_obs::Json;

/// (fixture, exact set of expected codes, expected exit code).
///
/// Exit 0: admissible, warnings and notes do not block. Exit 1: lint
/// errors, admission not attempted.
const CASES: &[(&str, &[&str], i32)] = &[
    ("clean.json", &[], 0),
    ("r0001_empty_interval.json", &["R0001"], 1),
    ("r0002_zero_rate.json", &["R0002"], 0),
    ("r0003_bad_window.json", &["R0003"], 1),
    ("r0004_duplicate_resource.json", &["R0004"], 0),
    ("r0005_duplicate_actor.json", &["R0005"], 1),
    // The sole cpu term serves nobody once the only actor sits at an
    // unsupplied location, so R0007 necessarily co-fires.
    ("r0006_unknown_supply.json", &["R0006", "R0007"], 1),
    ("r0007_unused_term.json", &["R0007"], 0),
    ("r0008_overcommit.json", &["R0008"], 1),
    ("r0009_tight.json", &["R0009"], 0),
    ("r0010_infeasible_schedule.json", &["R0010"], 1),
    ("r0011_conflicting_constraints.json", &["R0011"], 1),
    ("r0012_unknown_ref.json", &["R0012"], 1),
    ("r0013_idle_actor.json", &["R0013"], 0),
    ("r0014_outside_window.json", &["R0014"], 0),
    ("r0015_unknown_relation.json", &["R0015"], 1),
];

fn fixture(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

fn run_check(name: &str, json: bool) -> (i32, String, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_rota-cli"));
    cmd.arg("check").arg(fixture(name));
    if json {
        cmd.args(["--format", "json"]);
    }
    let out = cmd.output().expect("spawn rota-cli");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn fixtures_emit_exactly_their_codes() {
    for (name, expected_codes, expected_exit) in CASES {
        let (exit, stdout, stderr) = run_check(name, true);
        assert_eq!(
            exit, *expected_exit,
            "{name}: exit {exit}, expected {expected_exit}\nstdout: {stdout}\nstderr: {stderr}"
        );
        let doc = Json::parse(&stdout).unwrap_or_else(|e| panic!("{name}: bad JSON ({e}): {stdout}"));
        let emitted: BTreeSet<String> = doc
            .get("diagnostics")
            .and_then(Json::as_array)
            .unwrap_or_else(|| panic!("{name}: no diagnostics array"))
            .iter()
            .filter_map(|d| d.get("code").and_then(Json::as_str))
            .map(str::to_string)
            .collect();
        let expected: BTreeSet<String> = expected_codes.iter().map(|c| c.to_string()).collect();
        assert_eq!(emitted, expected, "{name}: code set mismatch\n{stdout}");
        // Severity in the output matches the published code table.
        for d in doc.get("diagnostics").and_then(Json::as_array).unwrap() {
            let code = d.get("code").and_then(Json::as_str).unwrap();
            let sev = d.get("severity").and_then(Json::as_str).unwrap();
            let table = rota_analyze::CODES
                .iter()
                .find(|(c, _, _)| *c == code)
                .unwrap_or_else(|| panic!("{name}: code {code} missing from CODES"));
            let expected_sev = match table.1 {
                rota_analyze::Severity::Error => "error",
                rota_analyze::Severity::Warning => "warning",
                rota_analyze::Severity::Note => "note",
            };
            assert_eq!(sev, expected_sev, "{name}: {code} severity drifted");
            // Every diagnostic resolves to a real span in the file.
            assert!(d.get("line").is_some(), "{name}: {code} lost its span");
        }
        let verdict = doc.get("verdict").and_then(Json::as_str).unwrap();
        if *expected_exit == 1 {
            assert_eq!(verdict, "lint-error", "{name}");
        } else {
            assert_eq!(verdict, "admissible", "{name}");
        }
    }
}

/// The corpus itself demonstrates at least 8 distinct error codes with
/// a non-zero exit — the analyzer's acceptance bar.
#[test]
fn corpus_covers_at_least_eight_error_codes() {
    let covered: BTreeSet<&str> = CASES
        .iter()
        .filter(|(_, _, exit)| *exit != 0)
        .flat_map(|(_, codes, _)| codes.iter().copied())
        .filter(|code| {
            rota_analyze::CODES
                .iter()
                .any(|(c, sev, _)| c == code && *sev == rota_analyze::Severity::Error)
        })
        .collect();
    assert!(
        covered.len() >= 8,
        "only {} error codes demonstrated: {covered:?}",
        covered.len()
    );
}

/// Text mode renders rustc-style diagnostics with carets into the spec
/// text, and explains that admission was not attempted.
#[test]
fn text_mode_renders_spans() {
    let (exit, _stdout, stderr) = run_check("r0008_overcommit.json", false);
    assert_eq!(exit, 1, "{stderr}");
    assert!(stderr.contains("error[R0008]"), "{stderr}");
    assert!(stderr.contains("-->"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
    assert!(stderr.contains("check result: 1 error"), "{stderr}");
    assert!(stderr.contains("admission not attempted"), "{stderr}");
}

/// The clean fixture stays byte-boring: no diagnostics, zero counts.
#[test]
fn clean_fixture_reports_zero_counts() {
    let (exit, stdout, _stderr) = run_check("clean.json", true);
    assert_eq!(exit, 0);
    let doc = Json::parse(&stdout).unwrap();
    assert_eq!(doc.get("errors").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("warnings").and_then(Json::as_u64), Some(0));
    assert_eq!(
        doc.get("diagnostics").and_then(Json::as_array).map(<[Json]>::len),
        Some(0)
    );
}
