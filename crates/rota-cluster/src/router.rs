//! The cluster router: location-routed admission and cross-location
//! two-phase commit.
//!
//! A [`ClusterRouter`] mounts on a `rota-server` as a
//! [`RequestHook`]: every inbound request passes through
//! [`ClusterRouter::intercept`] before the local shard pool sees it.
//! The routing rules, in order:
//!
//! 1. **Gossip** exchanges are absorbed into the node's
//!    [`GossipEngine`](crate::gossip::GossipEngine) and answered with
//!    the node's own digest.
//! 2. **Forwarded** requests (`forwarded: true`) fall through to the
//!    local core untouched — a peer already routed them here, and
//!    re-routing could loop.
//! 3. Fresh **admissions** are priced locally to discover which
//!    locations their demand touches. Demand on a location no node
//!    owns is rejected immediately with the analyzer's `R0016`
//!    diagnostic. Demand owned entirely by this node falls through to
//!    the local core (the common, zero-overhead case). Demand owned by
//!    one *other* node is forwarded over TCP (or answered with a
//!    `redirect` in redirect mode). Demand spanning several owners
//!    runs the two-phase protocol below.
//! 4. **Offers** are split by location ownership and installed on the
//!    owning nodes.
//!
//! ## Two-phase commit
//!
//! The coordinator snapshots every participant (`cluster-snapshot` →
//! per-shard epochs + obtainable resources Θ_expire), merges the
//! snapshots into one basis — sound because location ownership is
//! disjoint, so the union is exactly the merged single-node state —
//! and sends `prepare` to every participant carrying the basis and
//! the expected epochs. Each participant re-derives the decision
//! *itself* against the shared basis (decisions are deterministic, so
//! all participants agree), installs the commitments tentatively
//! under a TTL, and answers `prepared`. All prepared → `commit`
//! everywhere; any reject → the policy's verdict is returned verbatim
//! and the already-prepared participants are aborted; any stale epoch
//! → abort, re-snapshot, retry (bounded). A coordinator that dies
//! between prepare and commit leaks nothing: the TTL releases the
//! tentative reservations (see `rota-server::shard`).
//!
//! Participants believed **suspect** by the gossip layer are never
//! contacted: requests touching them are rejected up front with a
//! structured `peer-unavailable` diagnostic — degraded mode, not a
//! hang.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use rota_actor::{Granularity, TableCostModel};
use rota_admission::AdmissionRequest;
use rota_analyze::{check_ownership, Diagnostic, Report, Severity};
use rota_obs::{Counter, Registry};
use rota_server::spec::{resource_set, ComputationSpec, ResourceSpec};
use rota_server::{fault, LocalHandle, Request, RequestHook, Response};

use crate::gossip::{GossipEngine, PeerHealth};
use crate::topology::SharedTopology;

/// Knobs for one node's router.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// This node's id in the topology.
    pub me: String,
    /// Answer single-remote-owner admissions with a `redirect` instead
    /// of forwarding them server-side.
    pub redirects: bool,
    /// Timeout for each peer call (connect + request).
    pub peer_timeout: Duration,
    /// TTL on tentative 2PC reservations.
    pub ttl: Duration,
    /// How many times to re-snapshot and retry a 2PC that lost a race
    /// to a concurrent state change (stale epoch).
    pub max_retries: u32,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            me: String::new(),
            redirects: false,
            peer_timeout: Duration::from_secs(1),
            ttl: Duration::from_secs(2),
            max_retries: 4,
        }
    }
}

struct RouterObs {
    gossip_exchanges: Arc<Counter>,
    forwards: Arc<Counter>,
    redirects: Arc<Counter>,
    unowned_rejects: Arc<Counter>,
    degraded_rejects: Arc<Counter>,
    twopc_started: Arc<Counter>,
    twopc_committed: Arc<Counter>,
    twopc_rejected: Arc<Counter>,
    twopc_aborted: Arc<Counter>,
    twopc_retries: Arc<Counter>,
}

impl RouterObs {
    fn new(registry: &Registry) -> RouterObs {
        RouterObs {
            gossip_exchanges: registry.counter("cluster.gossip.exchanges"),
            forwards: registry.counter("cluster.router.forwards"),
            redirects: registry.counter("cluster.router.redirects"),
            unowned_rejects: registry.counter("cluster.router.unowned_rejects"),
            degraded_rejects: registry.counter("cluster.router.degraded_rejects"),
            twopc_started: registry.counter("cluster.twopc.started"),
            twopc_committed: registry.counter("cluster.twopc.committed"),
            twopc_rejected: registry.counter("cluster.twopc.rejected"),
            twopc_aborted: registry.counter("cluster.twopc.aborted"),
            twopc_retries: registry.counter("cluster.twopc.retries"),
        }
    }
}

/// One node's request router; see the module docs for the rules.
pub struct ClusterRouter {
    config: RouterConfig,
    topology: SharedTopology,
    gossip: Arc<Mutex<GossipEngine>>,
    health: Arc<PeerHealth>,
    local: LocalHandle,
    cost_model: TableCostModel,
    obs: RouterObs,
    /// Chaos hook: while set, inbound gossip is answered with an error
    /// (and the node's runtime stops dialing out) — a deterministic
    /// full partition of the gossip plane. See `Cluster::partition`.
    partitioned: Arc<AtomicBool>,
}

/// What one 2PC attempt concluded.
enum Attempt {
    /// Every participant prepared; proceed to commit.
    AllPrepared,
    /// A participant's policy rejected; its verdict passes through.
    Rejected(Response),
    /// A participant's epoch moved under us; re-snapshot and retry.
    Stale,
    /// A participant could not be reached or answered garbage.
    Failed(String),
}

impl ClusterRouter {
    /// Builds the router for node `config.me`, publishing its metrics
    /// into the server registry behind `local`.
    pub fn new(
        config: RouterConfig,
        topology: SharedTopology,
        gossip: Arc<Mutex<GossipEngine>>,
        health: Arc<PeerHealth>,
        local: LocalHandle,
        partitioned: Arc<AtomicBool>,
    ) -> ClusterRouter {
        let registry = local.registry().unwrap_or_default();
        let obs = RouterObs::new(&registry);
        ClusterRouter {
            config,
            topology,
            gossip,
            health,
            local,
            cost_model: TableCostModel::paper(),
            obs,
            partitioned,
        }
    }

    fn read_topology(&self) -> crate::topology::Topology {
        self.topology
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Calls `owner` with `request`: through the loopback handle when
    /// the owner is this node, over TCP otherwise.
    fn call_owner(&self, owner: &str, addr: &str, request: Request) -> Result<Response, String> {
        if owner == self.config.me {
            return Ok(self.local.call(request));
        }
        let socket = addr
            .parse()
            .map_err(|_| format!("peer `{owner}` has unusable address `{addr}`"))?;
        let mut client =
            rota_client::Client::connect_timeout(socket, self.config.peer_timeout)
                .map_err(|e| format!("peer `{owner}` unreachable: {e}"))?;
        client
            .call(&request)
            .map_err(|e| format!("peer `{owner}` failed: {e}"))
    }

    fn handle_gossip(&self, digest: &rota_server::GossipDigest) -> Response {
        if self.partitioned.load(Ordering::SeqCst) {
            return Response::Error {
                message: "gossip partitioned (injected)".into(),
            };
        }
        self.obs.gossip_exchanges.inc();
        let round = self.health.round();
        let mut engine = self
            .gossip
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        engine.absorb(digest, round);
        self.health.publish(engine.alive_set(round), round);
        Response::GossipAck {
            digest: engine.digest(),
        }
    }

    /// The degraded-mode verdict: the request needs `peer`, and the
    /// gossip layer believes `peer` is down.
    fn peer_unavailable(&self, name: &str, peer: &str) -> Response {
        self.obs.degraded_rejects.inc();
        let diagnostic = Diagnostic::new(
            "peer-unavailable",
            Severity::Error,
            format!("node `{peer}`"),
            format!(
                "the request demands locations owned by node `{peer}`, which has \
                 missed its last heartbeats and is suspected down"
            ),
        )
        .with_note("the cluster is in degraded mode for that peer's locations")
        .with_note("retry once gossip re-proves the peer alive");
        Response::Decision {
            computation: name.to_string(),
            accepted: false,
            shard: 0,
            reason: format!(
                "rejected by cluster router: owning node `{peer}` is unavailable \
                 (policy not consulted)"
            ),
            violated_term: None,
            clause: Some("cluster routing (degraded: peer unavailable)".to_string()),
            diagnostics: vec![diagnostic.to_json(None)],
        }
    }

    /// The `R0016` verdict: demand on a location the topology assigns
    /// to nobody.
    fn unowned(&self, name: &str, report: &Report) -> Response {
        self.obs.unowned_rejects.inc();
        Response::Decision {
            computation: name.to_string(),
            accepted: false,
            shard: 0,
            reason: format!(
                "rejected by cluster router: {} unowned location(s) in the demand \
                 (policy not consulted)",
                report.count(Severity::Error)
            ),
            violated_term: None,
            clause: Some("cluster routing (location ownership)".to_string()),
            diagnostics: report
                .diagnostics()
                .iter()
                .map(|d| d.to_json(None))
                .collect(),
        }
    }

    fn route_admit(
        &self,
        computation: &ComputationSpec,
        granularity: Granularity,
    ) -> Option<Response> {
        // Unbuildable specs fall through: the local core produces the
        // canonical spec-error response.
        let lambda = computation.build().ok()?;
        let request = AdmissionRequest::price(lambda, &self.cost_model, granularity);
        let demand = request.requirement().total_demand();
        let topology = self.read_topology();
        let owned = topology.locations();
        let ownership = check_ownership(&demand, &owned);
        if ownership.has_errors() {
            return Some(self.unowned(request.name(), &ownership));
        }
        let mut owners = BTreeSet::new();
        for (located, quantity) in demand.iter() {
            if quantity.is_zero() {
                continue;
            }
            if let Some(location) = located.locations().first() {
                if let Some(node) = topology.owner_of(location.name()) {
                    owners.insert(node.id.clone());
                }
            }
        }
        // No located demand, or all of it ours: the local core decides.
        owners.remove(&self.config.me);
        if owners.is_empty() {
            return None;
        }
        for owner in &owners {
            if !self.health.is_alive(owner) {
                return Some(self.peer_unavailable(request.name(), owner));
            }
        }
        let total_owners = owners.len()
            + usize::from(
                demand.iter().any(|(located, quantity)| {
                    !quantity.is_zero()
                        && located.locations().first().is_some_and(|l| {
                            topology
                                .owner_of(l.name())
                                .is_some_and(|n| n.id == self.config.me)
                        })
                }),
            );
        if total_owners == 1 {
            // Exactly one remote owner, nothing of ours: forward whole.
            // PANIC-OK: total_owners == 1 was just checked, so the set
            // holds exactly one id.
            let owner = owners.iter().next().expect("owners is non-empty").clone();
            let addr = topology
                .node(&owner)
                .map(|n| n.addr.clone())
                .unwrap_or_default();
            if self.config.redirects {
                self.obs.redirects.inc();
                return Some(Response::Redirect {
                    addr,
                    reason: format!(
                        "node `{owner}` owns every location this computation demands"
                    ),
                });
            }
            self.obs.forwards.inc();
            return Some(
                self.call_owner(
                    &owner,
                    &addr,
                    Request::Admit {
                        computation: computation.clone(),
                        granularity,
                        forwarded: true,
                    },
                )
                .unwrap_or_else(|message| Response::Error { message }),
            );
        }
        // Several owners (possibly including us): two-phase commit.
        let mut participants: Vec<String> = owners.into_iter().collect();
        if total_owners > participants.len() {
            participants.push(self.config.me.clone());
        }
        participants.sort();
        Some(self.two_phase(&topology, participants, computation, granularity, &request))
    }

    /// Runs one full two-phase admission across `participants`.
    fn two_phase(
        &self,
        topology: &crate::topology::Topology,
        participants: Vec<String>,
        computation: &ComputationSpec,
        granularity: Granularity,
        request: &AdmissionRequest,
    ) -> Response {
        self.obs.twopc_started.inc();
        let name = request.name().to_string();
        let addrs: Vec<String> = participants
            .iter()
            .map(|p| topology.node(p).map(|n| n.addr.clone()).unwrap_or_default())
            .collect();
        let ttl_ms = u64::try_from(self.config.ttl.as_millis()).unwrap_or(u64::MAX);
        for _attempt in 0..=self.config.max_retries {
            // Snapshot every participant; the union of disjoint slices
            // is the merged single-node basis.
            let mut epochs_by: Vec<Vec<u64>> = Vec::with_capacity(participants.len());
            let mut basis: Vec<ResourceSpec> = Vec::new();
            let mut snapshot_error = None;
            for (participant, addr) in participants.iter().zip(&addrs) {
                match self.call_owner(participant, addr, Request::ClusterSnapshot) {
                    Ok(Response::ClusterState { epochs, resources }) => {
                        let specs = resources
                            .as_array()
                            .map(rota_server::spec::resources_from_json)
                            .transpose()
                            .ok()
                            .flatten()
                            .unwrap_or_default();
                        basis.extend(specs);
                        epochs_by.push(epochs);
                    }
                    Ok(other) => {
                        snapshot_error = Some(format!(
                            "peer `{participant}` answered the snapshot with {other:?}"
                        ));
                        break;
                    }
                    Err(message) => {
                        snapshot_error = Some(message);
                        break;
                    }
                }
            }
            if let Some(message) = snapshot_error {
                self.obs.twopc_aborted.inc();
                return Response::Error {
                    message: format!("two-phase admission failed before prepare: {message}"),
                };
            }
            // Phase one: prepare everywhere.
            let mut prepared: Vec<usize> = Vec::new();
            let mut outcome = Attempt::AllPrepared;
            for (index, (participant, addr)) in
                participants.iter().zip(&addrs).enumerate()
            {
                let prepare = Request::Prepare {
                    name: name.clone(),
                    computation: computation.clone(),
                    granularity,
                    basis: basis.clone(),
                    epochs: epochs_by[index].clone(),
                    ttl_ms,
                };
                match self.call_owner(participant, addr, prepare) {
                    Ok(Response::Prepared { .. }) => prepared.push(index),
                    Ok(decision @ Response::Decision { .. }) => {
                        outcome = Attempt::Rejected(decision);
                        break;
                    }
                    Ok(Response::Error { message }) if message.contains("stale-epoch") => {
                        outcome = Attempt::Stale;
                        break;
                    }
                    Ok(other) => {
                        outcome = Attempt::Failed(format!(
                            "peer `{participant}` answered prepare with {other:?}"
                        ));
                        break;
                    }
                    Err(message) => {
                        outcome = Attempt::Failed(message);
                        break;
                    }
                }
            }
            match outcome {
                Attempt::AllPrepared => {
                    if self.local.take_2pc_ticket() {
                        // PANIC-OK: deterministic chaos drill — the
                        // coordinator dies between prepare and commit;
                        // the connection thread unwinds and the TTL
                        // must release every tentative reservation.
                        std::panic::panic_any(fault::INJECTED_PANIC);
                    }
                    // Phase two: commit everywhere.
                    for (participant, addr) in participants.iter().zip(&addrs) {
                        if let Err(message) = self
                            .call_owner(
                                participant,
                                addr,
                                Request::CommitReservation { name: name.clone() },
                            )
                            .and_then(|response| match response {
                                Response::Committed { .. } => Ok(()),
                                other => Err(format!("{other:?}")),
                            })
                        {
                            // Compensate: release everything, including
                            // any participant that already committed.
                            self.release(&participants, &addrs, &name);
                            self.obs.twopc_aborted.inc();
                            return Response::Error {
                                message: format!(
                                    "two-phase commit failed at `{participant}` \
                                     ({message}); all reservations released"
                                ),
                            };
                        }
                    }
                    self.obs.twopc_committed.inc();
                    return Response::Decision {
                        computation: name,
                        accepted: true,
                        shard: 0,
                        reason: format!(
                            "admitted across {} nodes (two-phase commit)",
                            participants.len()
                        ),
                        violated_term: None,
                        clause: None,
                        diagnostics: Vec::new(),
                    };
                }
                Attempt::Rejected(decision) => {
                    self.release_indices(&participants, &addrs, &prepared, &name);
                    self.obs.twopc_rejected.inc();
                    return decision;
                }
                Attempt::Stale => {
                    self.release_indices(&participants, &addrs, &prepared, &name);
                    self.obs.twopc_retries.inc();
                    continue;
                }
                Attempt::Failed(message) => {
                    self.release_indices(&participants, &addrs, &prepared, &name);
                    self.obs.twopc_aborted.inc();
                    return Response::Error {
                        message: format!("two-phase admission failed: {message}"),
                    };
                }
            }
        }
        self.obs.twopc_aborted.inc();
        Response::Error {
            message: format!(
                "two-phase admission for `{name}` lost {} epoch races; \
                 the cluster state keeps changing, retry later",
                self.config.max_retries + 1
            ),
        }
    }

    fn release(&self, participants: &[String], addrs: &[String], name: &str) {
        for (participant, addr) in participants.iter().zip(addrs) {
            let _ = self.call_owner(
                participant,
                addr,
                Request::AbortReservation {
                    name: name.to_string(),
                },
            );
        }
    }

    fn release_indices(
        &self,
        participants: &[String],
        addrs: &[String],
        indices: &[usize],
        name: &str,
    ) {
        for &index in indices {
            let _ = self.call_owner(
                &participants[index],
                &addrs[index],
                Request::AbortReservation {
                    name: name.to_string(),
                },
            );
        }
    }

    fn route_offer(&self, resources: &[ResourceSpec]) -> Option<Response> {
        let topology = self.read_topology();
        // Group the offered terms by owning node, keyed on each term's
        // first (source) location — the same rule as slicing.
        let mut groups: Vec<(String, Vec<ResourceSpec>)> = Vec::new();
        for spec in resources {
            let Ok(set) = resource_set(std::slice::from_ref(spec)) else {
                return None; // let the local core report the spec error
            };
            let Some(term) = set.to_terms().into_iter().next() else {
                continue; // null term: nothing to install anywhere
            };
            let location = term.located().locations()[0].name().to_string();
            let Some(owner) = topology.owner_of(&location) else {
                return Some(Response::Error {
                    message: format!(
                        "offer names location `{location}`, which no cluster node \
                         owns (R0016); fix the topology or the offer"
                    ),
                });
            };
            match groups.iter_mut().find(|(id, _)| *id == owner.id) {
                Some((_, group)) => group.push(spec.clone()),
                None => groups.push((owner.id.clone(), vec![spec.clone()])),
            }
        }
        if groups.iter().all(|(id, _)| *id == self.config.me) {
            return None; // everything ours: the local core installs it
        }
        for (owner, _) in &groups {
            if owner != &self.config.me && !self.health.is_alive(owner) {
                return Some(Response::Error {
                    message: format!(
                        "offer touches locations owned by `{owner}`, which is \
                         suspected down; retry once it recovers"
                    ),
                });
            }
        }
        let mut terms = 0u64;
        for (owner, group) in groups {
            let addr = topology
                .node(&owner)
                .map(|n| n.addr.clone())
                .unwrap_or_default();
            if owner != self.config.me {
                self.obs.forwards.inc();
            }
            match self.call_owner(
                &owner,
                &addr,
                Request::Offer {
                    resources: group,
                    forwarded: true,
                },
            ) {
                Ok(Response::Offered { terms: installed }) => terms += installed,
                Ok(other) => {
                    return Some(Response::Error {
                        message: format!(
                            "offer slice for `{owner}` failed with {other:?}; \
                             earlier slices may already be installed"
                        ),
                    })
                }
                Err(message) => {
                    return Some(Response::Error {
                        message: format!(
                            "offer slice for `{owner}` failed ({message}); \
                             earlier slices may already be installed"
                        ),
                    })
                }
            }
        }
        Some(Response::Offered { terms })
    }
}

impl RequestHook for ClusterRouter {
    fn intercept(&self, request: &Request) -> Option<Response> {
        match request {
            Request::Gossip { digest } => Some(self.handle_gossip(digest)),
            Request::Admit {
                computation,
                granularity,
                forwarded: false,
            } => self.route_admit(computation, *granularity),
            Request::Offer {
                resources,
                forwarded: false,
            } => self.route_offer(resources),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_config_defaults_are_sane() {
        let config = RouterConfig::default();
        assert!(!config.redirects);
        assert!(config.max_retries >= 1);
        assert!(config.ttl > Duration::ZERO);
    }

    #[test]
    fn peer_unavailable_json_names_the_peer() {
        // The diagnostic shape is load-bearing for clients that branch
        // on `code`.
        let diagnostic = Diagnostic::new(
            "peer-unavailable",
            Severity::Error,
            "node `node2`",
            "suspected down",
        )
        .to_json(None);
        let text = diagnostic.to_string();
        assert!(text.contains("peer-unavailable"), "{text}");
        assert!(text.contains("node2"), "{text}");
    }
}
