//! Seeded gossip membership: heartbeats, indirect beats, and supply
//! piggybacking.
//!
//! Each node runs one [`GossipEngine`]. Time is counted in *rounds*,
//! not wall clock: the node's runtime advances the round counter on a
//! fixed interval, beats its own sequence number, picks one peer with
//! the engine's seeded RNG, and exchanges [`GossipDigest`]s with it
//! (the `gossip` op answers with the receiver's digest, so one
//! exchange synchronizes both directions). Digests carry *indirect*
//! beats — the freshest sequence number heard for every known node —
//! so liveness propagates without all-to-all traffic, plus a
//! per-location supply summary for the sender's owned locations.
//!
//! Failure detection is purely local arithmetic: a peer is **suspect**
//! once no fresher beat has arrived for `suspect_after` rounds (and
//! until its first beat ever arrives — nodes start suspect and are
//! proven alive, not the reverse). The router consults the resulting
//! [`PeerHealth`] and degrades: cross-location requests touching a
//! suspect peer are rejected with a structured `peer-unavailable`
//! diagnostic instead of hanging on a dead socket.
//!
//! Everything here is deterministic given the seed and the round
//! schedule — the convergence tests below drive several engines
//! synchronously and assert the exact same behaviour on every run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rota_server::{GossipDigest, PeerBeat};

/// What one engine knows about one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerView {
    /// Address the peer serves on (`host:port`); may lag the topology
    /// until a digest carrying the bound address arrives.
    pub addr: String,
    /// Freshest heartbeat sequence number heard, directly or not.
    pub last_seq: u64,
    /// The round a fresher beat last arrived in; `None` until the
    /// first beat (never-heard peers are suspect).
    pub last_heard_round: Option<u64>,
    /// The peer's last piggybacked per-location supply summary.
    pub supply: Vec<(String, u64)>,
}

/// One node's deterministic gossip state machine.
#[derive(Debug)]
pub struct GossipEngine {
    me: String,
    addr: String,
    seq: u64,
    supply: Vec<(String, u64)>,
    peers: BTreeMap<String, PeerView>,
    rng: StdRng,
    suspect_after: u64,
}

impl GossipEngine {
    /// Creates an engine for node `me` serving on `addr`, seeded with
    /// the peer list `(id, addr)`. A peer is suspect until its first
    /// beat arrives; `suspect_after` is the number of beat-free rounds
    /// after which a previously live peer goes suspect again.
    pub fn new(
        me: &str,
        addr: &str,
        peers: &[(String, String)],
        seed: u64,
        suspect_after: u64,
    ) -> GossipEngine {
        GossipEngine {
            me: me.to_string(),
            addr: addr.to_string(),
            seq: 0,
            supply: Vec::new(),
            peers: peers
                .iter()
                .filter(|(id, _)| id != me)
                .map(|(id, addr)| {
                    (
                        id.clone(),
                        PeerView {
                            addr: addr.clone(),
                            last_seq: 0,
                            last_heard_round: None,
                            supply: Vec::new(),
                        },
                    )
                })
                .collect(),
            rng: StdRng::seed_from_u64(seed),
            suspect_after,
        }
    }

    /// This engine's node id.
    pub fn me(&self) -> &str {
        &self.me
    }

    /// Records the address this node actually bound (ephemeral ports).
    pub fn set_addr(&mut self, addr: &str) {
        self.addr = addr.to_string();
    }

    /// Replaces the per-location supply summary piggybacked on
    /// outgoing digests.
    pub fn set_supply(&mut self, supply: Vec<(String, u64)>) {
        self.supply = supply;
    }

    /// Fills in a peer's address when it is not yet known — called
    /// each round with the shared topology, whose empty addresses are
    /// patched after every node binds its (possibly ephemeral) port.
    /// Addresses already learned, from the topology or a beat, win.
    pub fn learn_addr(&mut self, id: &str, addr: &str) {
        if id == self.me || addr.is_empty() {
            return;
        }
        let view = self.peers.entry(id.to_string()).or_insert(PeerView {
            addr: String::new(),
            last_seq: 0,
            last_heard_round: None,
            supply: Vec::new(),
        });
        if view.addr.is_empty() {
            view.addr = addr.to_string();
        }
    }

    /// Advances this node's own heartbeat; called once per round.
    pub fn beat(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Picks the round's gossip target uniformly among peers with a
    /// known address, using the engine's seeded RNG — the whole
    /// schedule is a pure function of the seed. Suspect peers stay in
    /// the draw, which is what lets a recovered peer be re-proven.
    pub fn pick_target(&mut self) -> Option<(String, String)> {
        let candidates: Vec<(&String, &PeerView)> = self
            .peers
            .iter()
            .filter(|(_, view)| !view.addr.is_empty())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let index = self.rng.gen_range(0..candidates.len());
        let (id, view) = candidates[index];
        Some((id.clone(), view.addr.clone()))
    }

    /// This node's current digest: its own beat plus the freshest beat
    /// it has heard for every peer, and its supply summary.
    pub fn digest(&self) -> GossipDigest {
        let mut beats = vec![PeerBeat {
            node: self.me.clone(),
            seq: self.seq,
            addr: self.addr.clone(),
        }];
        beats.extend(self.peers.iter().filter(|(_, v)| v.last_seq > 0).map(
            |(id, view)| PeerBeat {
                node: id.clone(),
                seq: view.last_seq,
                addr: view.addr.clone(),
            },
        ));
        GossipDigest {
            from: self.me.clone(),
            seq: self.seq,
            beats,
            supply: self.supply.clone(),
        }
    }

    /// Absorbs a digest received in `round`: the sender is heard
    /// directly (beat, address, supply), and every strictly fresher
    /// indirect beat refreshes that peer's liveness too.
    pub fn absorb(&mut self, digest: &GossipDigest, round: u64) {
        if digest.from != self.me {
            let view = self.peers.entry(digest.from.clone()).or_insert(PeerView {
                addr: String::new(),
                last_seq: 0,
                last_heard_round: None,
                supply: Vec::new(),
            });
            if digest.seq > view.last_seq {
                view.last_seq = digest.seq;
            }
            view.last_heard_round = Some(round);
            view.supply = digest.supply.clone();
        }
        for beat in &digest.beats {
            if beat.node == self.me {
                continue;
            }
            let view = self.peers.entry(beat.node.clone()).or_insert(PeerView {
                addr: String::new(),
                last_seq: 0,
                last_heard_round: None,
                supply: Vec::new(),
            });
            if !beat.addr.is_empty() {
                view.addr = beat.addr.clone();
            }
            if beat.seq > view.last_seq {
                view.last_seq = beat.seq;
                view.last_heard_round = Some(round);
            }
        }
    }

    /// Whether `node` counts as alive at `round`: itself, or any peer
    /// heard within the last `suspect_after` rounds.
    pub fn alive(&self, node: &str, round: u64) -> bool {
        if node == self.me {
            return true;
        }
        self.peers
            .get(node)
            .and_then(|view| view.last_heard_round)
            .is_some_and(|heard| round.saturating_sub(heard) <= self.suspect_after)
    }

    /// Every node alive at `round`, including this one.
    pub fn alive_set(&self, round: u64) -> BTreeSet<String> {
        let mut alive: BTreeSet<String> = self
            .peers
            .keys()
            .filter(|id| self.alive(id, round))
            .cloned()
            .collect();
        alive.insert(self.me.clone());
        alive
    }

    /// The last supply summary heard from `node`.
    pub fn supply_of(&self, node: &str) -> Option<&[(String, u64)]> {
        self.peers.get(node).map(|view| view.supply.as_slice())
    }

    /// The peer table, for inspection.
    pub fn peers(&self) -> &BTreeMap<String, PeerView> {
        &self.peers
    }
}

/// The gossip runtime's published conclusion, shared with the router:
/// which nodes are currently believed alive, and the current round.
#[derive(Debug, Default)]
pub struct PeerHealth {
    alive: RwLock<BTreeSet<String>>,
    round: AtomicU64,
}

impl PeerHealth {
    /// An empty health view (everything suspect, round zero).
    pub fn new() -> PeerHealth {
        PeerHealth::default()
    }

    /// Publishes the engine's conclusion for `round`.
    pub fn publish(&self, alive: BTreeSet<String>, round: u64) {
        *self
            .alive
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = alive;
        self.round.store(round, Ordering::SeqCst);
    }

    /// Whether `node` was alive as of the last published round.
    pub fn is_alive(&self, node: &str) -> bool {
        self.alive
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .contains(node)
    }

    /// The nodes alive as of the last published round.
    pub fn alive_nodes(&self) -> BTreeSet<String> {
        self.alive
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// The last published round.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<GossipEngine> {
        let peers: Vec<(String, String)> = (0..n)
            .map(|i| (format!("node{i}"), format!("127.0.0.1:{}", 9000 + i)))
            .collect();
        (0..n)
            .map(|i| {
                GossipEngine::new(
                    &format!("node{i}"),
                    &format!("127.0.0.1:{}", 9000 + i),
                    &peers,
                    7 + i as u64,
                    3,
                )
            })
            .collect()
    }

    /// One synchronous round: every engine beats, picks its seeded
    /// target, and exchanges digests with it (both directions, like
    /// the `gossip`/`gossip-ack` pair on the wire). `down` engines
    /// neither send nor answer.
    fn run_round(engines: &mut [GossipEngine], round: u64, down: &[usize]) {
        let n = engines.len();
        for i in 0..n {
            if down.contains(&i) {
                continue;
            }
            engines[i].beat();
            let Some((target_id, _)) = engines[i].pick_target() else {
                continue;
            };
            let target = (0..n)
                .find(|&j| engines[j].me() == target_id)
                .expect("targets come from the peer table");
            if down.contains(&target) {
                continue;
            }
            let outbound = engines[i].digest();
            engines[target].absorb(&outbound, round);
            let ack = engines[target].digest();
            engines[i].absorb(&ack, round);
        }
    }

    #[test]
    fn same_seed_means_same_target_schedule() {
        let peers: Vec<(String, String)> = (0..5)
            .map(|i| (format!("node{i}"), format!("h:{i}")))
            .collect();
        let mut a = GossipEngine::new("node0", "h:0", &peers, 42, 3);
        let mut b = GossipEngine::new("node0", "h:0", &peers, 42, 3);
        for _ in 0..64 {
            assert_eq!(a.pick_target(), b.pick_target());
        }
    }

    #[test]
    fn five_nodes_converge_and_stay_converged() {
        let mut engines = ring(5);
        let all: BTreeSet<String> = (0..5).map(|i| format!("node{i}")).collect();
        let mut converged_at = None;
        for round in 1..=32 {
            run_round(&mut engines, round, &[]);
            if engines.iter().all(|e| e.alive_set(round) == all) {
                converged_at = Some(round);
                break;
            }
        }
        let round = converged_at.expect("five engines converge within 32 rounds");
        // Convergence is stable: later rounds keep everyone alive.
        for later in round + 1..round + 8 {
            run_round(&mut engines, later, &[]);
            for engine in &engines {
                assert_eq!(engine.alive_set(later), all, "round {later}");
            }
        }
    }

    #[test]
    fn convergence_round_is_deterministic() {
        let converge = || {
            let mut engines = ring(4);
            let all: BTreeSet<String> = (0..4).map(|i| format!("node{i}")).collect();
            for round in 1..=32 {
                run_round(&mut engines, round, &[]);
                if engines.iter().all(|e| e.alive_set(round) == all) {
                    return round;
                }
            }
            panic!("no convergence in 32 rounds");
        };
        assert_eq!(converge(), converge());
    }

    #[test]
    fn a_silent_peer_goes_suspect_then_recovers() {
        let mut engines = ring(3);
        let mut round = 0;
        // Converge first.
        for _ in 0..12 {
            round += 1;
            run_round(&mut engines, round, &[]);
        }
        assert!(engines[0].alive("node2", round));
        // node2 goes dark: after suspect_after rounds the others
        // notice, because no fresher beat arrives.
        for _ in 0..6 {
            round += 1;
            run_round(&mut engines, round, &[2]);
        }
        assert!(!engines[0].alive("node2", round));
        assert!(!engines[1].alive("node2", round));
        // node2 comes back: one successful exchange re-proves it
        // (directly or via an indirect beat within suspect_after).
        for _ in 0..8 {
            round += 1;
            run_round(&mut engines, round, &[]);
        }
        assert!(engines[0].alive("node2", round));
        assert!(engines[1].alive("node2", round));
    }

    #[test]
    fn never_heard_peers_start_suspect() {
        let engines = ring(2);
        assert!(!engines[0].alive("node1", 0));
        assert!(engines[0].alive("node0", 0));
    }

    #[test]
    fn supply_summaries_piggyback_on_digests() {
        let mut engines = ring(2);
        engines[1].set_supply(vec![("l1".into(), 128)]);
        engines[1].beat();
        let digest = engines[1].digest();
        engines[0].absorb(&digest, 1);
        assert_eq!(
            engines[0].supply_of("node1"),
            Some(&[("l1".to_string(), 128)][..])
        );
    }
}
