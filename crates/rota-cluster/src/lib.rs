//! # rota-cluster — multi-node federation for the admission service
//!
//! Scales `rota-server` past one machine while keeping the paper's
//! soundness guarantee: a federated accept is exactly as sound as the
//! single-node [`RotaPolicy`](rota_admission::RotaPolicy) decision
//! over the merged state.
//!
//! The pieces:
//!
//! - [`topology`] — a static, disjoint location → node assignment,
//!   from a JSON file or [`Topology::auto`]. Ownership is the routing
//!   key for everything else.
//! - [`gossip`] — seeded, round-based membership: heartbeats with
//!   indirect beats and piggybacked per-location supply summaries,
//!   deterministic given the seed. Peers missing heartbeats go
//!   **suspect**; routing degrades instead of hanging.
//! - [`router`] — a [`RequestHook`](rota_server::RequestHook) mounted
//!   on each node: single-owner admissions are decided locally or
//!   forwarded (loop-safe via the protocol's `forwarded` flag);
//!   cross-owner admissions run a two-phase prepare/commit with
//!   TTL-guarded tentative reservations and compensating aborts.
//! - [`node`] — [`Cluster::launch`]: bind every node on its slice of
//!   the supply, patch real addresses into the shared topology, then
//!   start the gossip runtimes.
//!
//! ## Why the federation is sound
//!
//! Location ownership is disjoint, so the union of per-node
//! obtainable-resource snapshots *is* the merged single-node state.
//! Every 2PC participant re-derives the decision itself against that
//! shared basis with the same deterministic policy — so participants
//! cannot disagree, and the verdict equals the one a single node
//! holding all resources would return (property-tested in
//! `tests/properties.rs`). Tentative reservations carry a TTL, so a
//! coordinator dying between prepare and commit leaks nothing: the
//! owning shards release the hold themselves (chaos-tested in
//! `tests/chaos.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gossip;
pub mod node;
pub mod router;
pub mod topology;

pub use gossip::{GossipEngine, PeerHealth, PeerView};
pub use node::{Cluster, ClusterConfig, ClusterNode};
pub use router::{ClusterRouter, RouterConfig};
pub use topology::{NodeSpec, SharedTopology, Topology, TopologyError};
