//! Cluster topology: which node owns which locations.
//!
//! A topology is a static assignment of every location to exactly one
//! node. Ownership is the routing key for the whole federation: an
//! admission request lands wherever the client likes, and the
//! receiving node's router forwards or coordinates based on which
//! nodes own the locations the request's demand touches. Link terms
//! (`network(a → b)`) are owned by the *source* location's node, the
//! same convention `rota-server`'s shard router uses.
//!
//! Topologies come from a JSON file (`{"nodes": [{"id", "addr",
//! "locations": [...]}]}`) or from [`Topology::auto`], which assigns
//! location `l{i}` to node `node{i}` — matching the locations
//! `rota-workload` generates. Addresses may be left empty (`""`) to
//! mean "bind an ephemeral port"; `Cluster::launch` patches the real
//! bound addresses back into the shared topology before gossip starts.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, RwLock};

use rota_obs::Json;
use rota_resource::ResourceSet;

/// One node in the cluster: an id, a serve address, and the locations
/// it owns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Unique node id (e.g. `node0`).
    pub id: String,
    /// Address the node serves on (`host:port`), or empty for
    /// "ephemeral, patched after bind".
    pub addr: String,
    /// Names of the locations this node owns.
    pub locations: Vec<String>,
}

/// Errors building or parsing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopologyError(pub String);

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topology: {}", self.0)
    }
}

impl std::error::Error for TopologyError {}

/// A validated location → node assignment.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    owners: BTreeMap<String, usize>,
}

/// A topology shared between a node's router, its gossip runtime, and
/// the launcher that patches in bound addresses.
pub type SharedTopology = Arc<RwLock<Topology>>;

impl Topology {
    /// Builds a topology, validating that node ids are unique, every
    /// node owns at least one location, and no location has two owners.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] naming the offending node or location.
    pub fn new(nodes: Vec<NodeSpec>) -> Result<Topology, TopologyError> {
        if nodes.is_empty() {
            return Err(TopologyError("a cluster needs at least one node".into()));
        }
        let mut owners = BTreeMap::new();
        let mut ids = BTreeSet::new();
        for (index, node) in nodes.iter().enumerate() {
            if node.id.is_empty() {
                return Err(TopologyError(format!("node #{index} has an empty id")));
            }
            if !ids.insert(node.id.clone()) {
                return Err(TopologyError(format!("duplicate node id `{}`", node.id)));
            }
            if node.locations.is_empty() {
                return Err(TopologyError(format!(
                    "node `{}` owns no locations",
                    node.id
                )));
            }
            for location in &node.locations {
                if let Some(previous) = owners.insert(location.clone(), index) {
                    return Err(TopologyError(format!(
                        "location `{location}` is owned by both `{}` and `{}`",
                        nodes[previous].id, node.id
                    )));
                }
            }
        }
        Ok(Topology { nodes, owners })
    }

    /// The canonical `n`-node topology: node `node{i}` owns location
    /// `l{i}` (the naming `rota-workload` generates), with ephemeral
    /// addresses.
    ///
    /// # Panics
    ///
    /// If `n` is zero.
    pub fn auto(n: usize) -> Topology {
        assert!(n > 0, "a cluster needs at least one node");
        Topology::new(
            (0..n)
                .map(|i| NodeSpec {
                    id: format!("node{i}"),
                    addr: String::new(),
                    locations: vec![format!("l{i}")],
                })
                .collect(),
        )
        // PANIC-OK: node `i` owns exactly `l{i}` — ids and locations
        // cannot collide by construction.
        .expect("auto topologies are disjoint by construction")
    }

    /// Parses a topology from its JSON document form:
    /// `{"nodes": [{"id", "addr"?, "locations": [...]}]}`.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on schema violations or ownership overlaps.
    pub fn from_json(doc: &Json) -> Result<Topology, TopologyError> {
        let nodes_value = doc
            .get("nodes")
            .ok_or_else(|| TopologyError("missing `nodes` array".into()))?;
        let entries = nodes_value
            .as_array()
            .ok_or_else(|| TopologyError("`nodes` must be an array".into()))?;
        let mut nodes = Vec::new();
        for entry in entries {
            let id = entry
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| TopologyError("node entry missing string `id`".into()))?
                .to_string();
            let addr = entry
                .get("addr")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string();
            let locations_value = entry
                .get("locations")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    TopologyError(format!("node `{id}` missing `locations` array"))
                })?;
            let mut locations = Vec::new();
            for location in locations_value {
                locations.push(
                    location
                        .as_str()
                        .ok_or_else(|| {
                            TopologyError(format!(
                                "node `{id}`: locations must be strings"
                            ))
                        })?
                        .to_string(),
                );
            }
            nodes.push(NodeSpec { id, addr, locations });
        }
        Topology::new(nodes)
    }

    /// Parses a topology from JSON text.
    ///
    /// # Errors
    ///
    /// [`TopologyError`] on malformed JSON or schema violations.
    pub fn parse(text: &str) -> Result<Topology, TopologyError> {
        let doc = Json::parse(text).map_err(|e| TopologyError(e.to_string()))?;
        Topology::from_json(&doc)
    }

    /// Serializes the topology as its JSON document form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "nodes".into(),
            Json::Arr(
                self.nodes
                    .iter()
                    .map(|node| {
                        Json::Obj(vec![
                            ("id".into(), Json::Str(node.id.clone())),
                            ("addr".into(), Json::Str(node.addr.clone())),
                            (
                                "locations".into(),
                                Json::Arr(
                                    node.locations
                                        .iter()
                                        .map(|l| Json::Str(l.clone()))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// All nodes, in declaration order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Looks a node up by id.
    pub fn node(&self, id: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The node owning `location`, if any.
    pub fn owner_of(&self, location: &str) -> Option<&NodeSpec> {
        self.owners.get(location).map(|&i| &self.nodes[i])
    }

    /// Every location any node owns.
    pub fn locations(&self) -> BTreeSet<String> {
        self.owners.keys().cloned().collect()
    }

    /// Records the address `id` actually bound (ephemeral-port launch).
    pub fn set_addr(&mut self, id: &str, addr: &str) {
        if let Some(node) = self.nodes.iter_mut().find(|n| n.id == id) {
            node.addr = addr.to_string();
        }
    }

    /// The other nodes, from `id`'s perspective: `(peer id, addr)`.
    pub fn peers_of(&self, id: &str) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .filter(|n| n.id != id)
            .map(|n| (n.id.clone(), n.addr.clone()))
            .collect()
    }

    /// The slice of `theta` that `id` owns: every term whose located
    /// type's first location (the source, for links) belongs to `id`.
    /// Terms at locations no node owns are dropped from every slice.
    pub fn slice(&self, theta: &ResourceSet, id: &str) -> ResourceSet {
        let owned: BTreeSet<&str> = self
            .node(id)
            .map(|n| n.locations.iter().map(String::as_str).collect())
            .unwrap_or_default();
        ResourceSet::from_terms(theta.to_terms().into_iter().filter(|term| {
            term.located()
                .locations()
                .first()
                .is_some_and(|l| owned.contains(l.name()))
        }))
        // PANIC-OK: filtering terms out of a set that already passed
        // validation cannot introduce an unbounded rate.
        .expect("a filtered subset of a valid set is a valid set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rota_interval::TimeInterval;
    use rota_resource::{LocatedType, Location, Rate, ResourceTerm};

    fn theta(locations: &[&str]) -> ResourceSet {
        ResourceSet::from_terms(locations.iter().map(|l| {
            ResourceTerm::new(
                Rate::new(4),
                TimeInterval::from_ticks(0, 32).unwrap(),
                LocatedType::cpu(Location::new(*l)),
            )
        }))
        .unwrap()
    }

    #[test]
    fn auto_topology_round_trips_through_json() {
        let topology = Topology::auto(3);
        let text = topology.to_json().to_string();
        let parsed = Topology::parse(&text).unwrap();
        assert_eq!(parsed.nodes(), topology.nodes());
        assert_eq!(parsed.owner_of("l2").unwrap().id, "node2");
        assert!(parsed.owner_of("l9").is_none());
    }

    #[test]
    fn overlapping_ownership_is_rejected() {
        let err = Topology::new(vec![
            NodeSpec {
                id: "a".into(),
                addr: String::new(),
                locations: vec!["l0".into()],
            },
            NodeSpec {
                id: "b".into(),
                addr: String::new(),
                locations: vec!["l0".into()],
            },
        ])
        .unwrap_err();
        assert!(err.to_string().contains("l0"), "{err}");
    }

    #[test]
    fn slices_partition_the_supply() {
        let topology = Topology::auto(3);
        let full = theta(&["l0", "l1", "l2"]);
        let union = topology
            .slice(&full, "node0")
            .union(&topology.slice(&full, "node1"))
            .unwrap()
            .union(&topology.slice(&full, "node2"))
            .unwrap();
        assert_eq!(union, full);
        // Each slice holds exactly its own location.
        let slice = topology.slice(&full, "node1");
        assert_eq!(slice.to_terms().len(), 1);
        assert_eq!(
            slice.to_terms()[0].located().locations()[0].name(),
            "l1"
        );
    }

    #[test]
    fn link_terms_belong_to_the_source_node() {
        let full = ResourceSet::from_terms([ResourceTerm::new(
            Rate::new(2),
            TimeInterval::from_ticks(0, 8).unwrap(),
            LocatedType::network(Location::new("l0"), Location::new("l1")),
        )])
        .unwrap();
        let topology = Topology::auto(2);
        assert_eq!(topology.slice(&full, "node0").to_terms().len(), 1);
        assert!(topology.slice(&full, "node1").to_terms().is_empty());
    }
}
