//! Launching and running a cluster of federated admission nodes.
//!
//! [`Cluster::launch`] starts one `rota-server` per topology node, each
//! serving the slice of the supply its node owns and mounting a
//! [`ClusterRouter`] as its request hook. Launch is two-phase so
//! ephemeral ports work: first every server binds (recording its real
//! address into the shared topology), then every node's gossip runtime
//! starts — so the first gossip round already knows where everyone
//! lives.
//!
//! The gossip runtime is one thread per node: every `gossip_interval`
//! it advances the node's round counter, beats the engine, picks the
//! round's seeded target, and exchanges digests with it over the wire
//! (`hello` handshake first, so version mismatches surface as
//! structured errors). The engine's conclusions are published to the
//! node's [`PeerHealth`], which the router consults, and to per-peer
//! `cluster.peer.alive{peer=...}` gauges in the node's registry.
//!
//! Test hooks: [`Cluster::partition`] cuts a node off the gossip
//! plane deterministically — its runtime stops dialing out and its
//! router answers inbound gossip with an error — so failure detection,
//! degraded-mode routing, and recovery can be drilled without timing
//! races; [`Cluster::kill`] stops a node outright.

use std::collections::BTreeMap;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rota_admission::AdmissionPolicy;
use rota_obs::Histogram;
use rota_resource::ResourceSet;
use rota_server::{FaultPlan, Request, Response, Server, ServerConfig, ServerHandle};

use crate::gossip::{GossipEngine, PeerHealth};
use crate::router::{ClusterRouter, RouterConfig};
use crate::topology::{SharedTopology, Topology};

/// Knobs for a whole cluster launch.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shards per node. Defaults to 1: with one shard per node,
    /// per-node statistics aggregate exactly (a multi-shard node counts
    /// a 2PC accept once per holding shard).
    pub shards: usize,
    /// Per-shard queue capacity.
    pub queue_capacity: usize,
    /// Wall-clock length of one gossip round.
    pub gossip_interval: Duration,
    /// Beat-free rounds before a peer goes suspect.
    pub suspect_after: u64,
    /// Timeout for peer calls (gossip, forwards, 2PC legs).
    pub peer_timeout: Duration,
    /// TTL on tentative 2PC reservations.
    pub ttl: Duration,
    /// Answer single-remote-owner admissions with `redirect` instead of
    /// forwarding server-side.
    pub redirects: bool,
    /// Base RNG seed; node `i` gossips with seed `seed + i`.
    pub seed: u64,
    /// Per-node fault plans for chaos drills, keyed by node id.
    pub fault_plans: BTreeMap<String, FaultPlan>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 1,
            queue_capacity: 64,
            gossip_interval: Duration::from_millis(200),
            suspect_after: 3,
            peer_timeout: Duration::from_secs(1),
            ttl: Duration::from_secs(2),
            redirects: false,
            seed: 0,
            fault_plans: BTreeMap::new(),
        }
    }
}

/// One running node: its server plus its gossip runtime.
pub struct ClusterNode {
    id: String,
    addr: SocketAddr,
    handle: ServerHandle,
    health: Arc<PeerHealth>,
    partitioned: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    gossip_thread: Option<JoinHandle<()>>,
}

impl ClusterNode {
    /// The node's id in the topology.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The address the node's server bound.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The node's published liveness view.
    pub fn health(&self) -> &Arc<PeerHealth> {
        &self.health
    }

    fn stop_gossip(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.gossip_thread.take() {
            let _ = thread.join();
        }
    }
}

/// A running cluster: the shared topology and every node.
pub struct Cluster {
    topology: SharedTopology,
    nodes: Vec<ClusterNode>,
}

/// Sums each owned location's total obtainable quantity, for the
/// digest's piggybacked supply summary.
fn supply_summary(slice: &ResourceSet) -> Vec<(String, u64)> {
    let mut by_location: BTreeMap<String, u64> = BTreeMap::new();
    for term in slice.to_terms() {
        let location = term.located().locations()[0].name().to_string();
        let units = term
            .total_quantity()
            .map(|q| q.units())
            .unwrap_or(u64::MAX);
        let entry = by_location.entry(location).or_insert(0);
        *entry = entry.saturating_add(units);
    }
    by_location.into_iter().collect()
}

impl Cluster {
    /// Launches every node of `topology` over its slice of `theta`,
    /// each running `policy`.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (e.g. a pinned address already in use).
    pub fn launch<P>(
        topology: Topology,
        theta: &ResourceSet,
        policy: P,
        config: ClusterConfig,
    ) -> io::Result<Cluster>
    where
        P: AdmissionPolicy + Clone + Send + 'static,
    {
        let shared: SharedTopology = Arc::new(RwLock::new(topology.clone()));
        let mut nodes = Vec::new();
        // Phase one: bind every server and record its real address.
        for (index, spec) in topology.nodes().iter().enumerate() {
            let slice = topology.slice(theta, &spec.id);
            let bind_addr: SocketAddr = spec
                .addr
                .parse()
                // PANIC-OK: the fallback is a literal loopback address.
                .unwrap_or_else(|_| "127.0.0.1:0".parse().expect("literal parses"));
            let server_config = ServerConfig {
                addr: bind_addr,
                shards: config.shards,
                fault_plan: config.fault_plans.get(&spec.id).cloned(),
                queue_capacity: config.queue_capacity,
                ..ServerConfig::default()
            };
            let engine = Arc::new(Mutex::new(GossipEngine::new(
                &spec.id,
                &spec.addr,
                &topology.peers_of(&spec.id),
                config.seed + index as u64,
                config.suspect_after,
            )));
            let health = Arc::new(PeerHealth::new());
            let router_config = RouterConfig {
                me: spec.id.clone(),
                redirects: config.redirects,
                peer_timeout: config.peer_timeout,
                ttl: config.ttl,
                ..RouterConfig::default()
            };
            let partitioned = Arc::new(AtomicBool::new(false));
            let hook_topology = Arc::clone(&shared);
            let hook_engine = Arc::clone(&engine);
            let hook_health = Arc::clone(&health);
            let hook_partitioned = Arc::clone(&partitioned);
            let handle = Server::spawn_hooked(
                server_config,
                policy.clone(),
                &slice,
                move |local| {
                    Arc::new(ClusterRouter::new(
                        router_config,
                        hook_topology,
                        hook_engine,
                        hook_health,
                        local,
                        hook_partitioned,
                    ))
                },
            )?;
            let addr = handle.local_addr();
            shared
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .set_addr(&spec.id, &addr.to_string());
            {
                let mut engine = engine
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                engine.set_addr(&addr.to_string());
                engine.set_supply(supply_summary(&slice));
            }
            nodes.push((spec.id.clone(), addr, handle, engine, health, partitioned));
        }
        // Phase two: every address is known; start the gossip runtimes.
        let mut running = Vec::new();
        for (id, addr, handle, engine, health, partitioned) in nodes {
            let stop = Arc::new(AtomicBool::new(false));
            let thread = spawn_gossip_runtime(
                id.clone(),
                Arc::clone(&shared),
                engine,
                Arc::clone(&health),
                &handle,
                config.gossip_interval,
                config.peer_timeout,
                Arc::clone(&partitioned),
                Arc::clone(&stop),
            )?;
            running.push(ClusterNode {
                id,
                addr,
                handle,
                health,
                partitioned,
                stop,
                gossip_thread: Some(thread),
            });
        }
        Ok(Cluster {
            topology: shared,
            nodes: running,
        })
    }

    /// The shared topology, with real bound addresses patched in.
    pub fn topology(&self) -> SharedTopology {
        Arc::clone(&self.topology)
    }

    /// Every node, in topology order.
    pub fn nodes(&self) -> &[ClusterNode] {
        &self.nodes
    }

    /// Looks a node up by id.
    pub fn node(&self, id: &str) -> Option<&ClusterNode> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// Every node's bound address, in topology order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.nodes.iter().map(|n| n.addr).collect()
    }

    /// Blocks until every node believes every other node alive, or
    /// `timeout` passes. Returns whether convergence was reached.
    pub fn await_converged(&self, timeout: Duration) -> bool {
        let ids: Vec<String> = self.nodes.iter().map(|n| n.id.clone()).collect();
        let deadline = Instant::now() + timeout;
        loop {
            let converged = self.nodes.iter().all(|node| {
                ids.iter()
                    .all(|id| id == &node.id || node.health.is_alive(id))
            });
            if converged {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(15));
        }
    }

    /// Cuts a node off the gossip plane (`true`) or reconnects it
    /// (`false`): its runtime stops dialing out and its router answers
    /// inbound gossip with an injected error, so the rest of the
    /// cluster stops hearing fresh beats — a deterministic partition.
    /// Admission traffic is unaffected at the socket level; what
    /// protects it is the degraded-mode routing this partition trips.
    pub fn partition(&self, id: &str, partitioned: bool) {
        if let Some(node) = self.node(id) {
            node.partitioned.store(partitioned, Ordering::SeqCst);
        }
    }

    /// Stops a node outright: gossip runtime first, then its server.
    /// The survivors' gossip marks it suspect within `suspect_after`
    /// rounds.
    pub fn kill(&mut self, id: &str) {
        if let Some(position) = self.nodes.iter().position(|n| n.id == id) {
            let mut node = self.nodes.remove(position);
            node.stop_gossip();
            node.handle.shutdown();
        }
    }

    /// Stops every node.
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            node.stop_gossip();
        }
        for node in &self.nodes {
            node.handle.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            node.stop_gossip();
        }
    }
}

/// One node's gossip loop: advance the round, beat, exchange with the
/// round's seeded target, publish conclusions.
#[allow(clippy::too_many_arguments)]
fn spawn_gossip_runtime(
    me: String,
    topology: SharedTopology,
    engine: Arc<Mutex<GossipEngine>>,
    health: Arc<PeerHealth>,
    handle: &ServerHandle,
    interval: Duration,
    peer_timeout: Duration,
    partitioned: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
) -> io::Result<JoinHandle<()>> {
    let registry = handle.registry();
    let round_ns: Arc<Histogram> =
        registry.histogram("cluster.gossip.round_ns", Histogram::latency_ns_bounds());
    let peer_gauges: BTreeMap<String, _> = topology
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .peers_of(&me)
        .into_iter()
        .map(|(id, _)| {
            let gauge = registry.gauge(&format!("cluster.peer.alive{{peer={id}}}"));
            (id, gauge)
        })
        .collect();
    std::thread::Builder::new()
        .name(format!("rota-gossip-{me}"))
        .spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                std::thread::sleep(interval);
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let started = Instant::now();
                // Rounds advance even while partitioned, so the cut-off
                // node's own suspicion arithmetic keeps moving too.
                let round = health.round() + 1;
                let peers = topology
                    .read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .peers_of(&me);
                let target = {
                    let mut engine = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    for (id, addr) in &peers {
                        engine.learn_addr(id, addr);
                    }
                    engine.beat();
                    engine.pick_target()
                };
                if !partitioned.load(Ordering::SeqCst) {
                    if let Some((_, addr)) = target {
                        let outbound = {
                            let engine = engine
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            engine.digest()
                        };
                        if let Some(ack) = exchange(&addr, &me, outbound, peer_timeout) {
                            engine
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .absorb(&ack, round);
                        }
                    }
                }
                let alive = {
                    let engine = engine
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    engine.alive_set(round)
                };
                for (peer, gauge) in &peer_gauges {
                    gauge.set(i64::from(alive.contains(peer)));
                }
                health.publish(alive, round);
                round_ns.observe(
                    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
            }
        })
}

/// One wire exchange: handshake, send our digest, absorb the ack's.
fn exchange(
    addr: &str,
    me: &str,
    digest: rota_server::GossipDigest,
    timeout: Duration,
) -> Option<rota_server::GossipDigest> {
    let socket: SocketAddr = addr.parse().ok()?;
    let mut client = rota_client::Client::connect_timeout(socket, timeout).ok()?;
    client.hello_as(Some(me)).ok()?;
    match client.call(&Request::Gossip { digest }).ok()? {
        Response::GossipAck { digest } => Some(digest),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rota_interval::TimeInterval;
    use rota_resource::{LocatedType, Location, Rate, ResourceTerm};

    #[test]
    fn supply_summaries_total_rate_times_window() {
        let slice = ResourceSet::from_terms([
            ResourceTerm::new(
                Rate::new(4),
                TimeInterval::from_ticks(0, 10).unwrap(),
                LocatedType::cpu(Location::new("l0")),
            ),
            ResourceTerm::new(
                Rate::new(2),
                TimeInterval::from_ticks(0, 10).unwrap(),
                LocatedType::memory(Location::new("l0")),
            ),
        ])
        .unwrap();
        let summary = supply_summary(&slice);
        assert_eq!(summary, vec![("l0".to_string(), 60)]);
    }
}
