//! Cluster failure drills: a coordinator killed mid-2PC (tentative
//! reservations must TTL-expire, never leak, never double-commit),
//! a gossip-plane partition (degraded-mode rejections, then recovery),
//! and gossip convergence despite injected connection resets.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use rota_actor::{ActionKind, ActorComputation, DistributedComputation, Granularity};
use rota_admission::RotaPolicy;
use rota_cluster::{Cluster, ClusterConfig, Topology};
use rota_interval::{TimeInterval, TimePoint};
use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};
use rota_server::{FaultPlan, Request, Response};

fn theta(locations: &[&str]) -> ResourceSet {
    ResourceSet::from_terms(locations.iter().map(|l| {
        ResourceTerm::new(
            Rate::new(8),
            TimeInterval::from_ticks(0, 64).unwrap(),
            LocatedType::cpu(Location::new(*l)),
        )
    }))
    .unwrap()
}

fn spanning_job(name: &str) -> DistributedComputation {
    DistributedComputation::new(
        name,
        vec![
            ActorComputation::new(format!("{name}-a0"), "l0").then(ActionKind::evaluate()),
            ActorComputation::new(format!("{name}-a1"), "l1").then(ActionKind::evaluate()),
        ],
        TimePoint::ZERO,
        TimePoint::new(16),
    )
    .unwrap()
}

fn local_job(name: &str, location: &str) -> DistributedComputation {
    DistributedComputation::new(
        name,
        vec![ActorComputation::new(format!("{name}-a0"), location)
            .then(ActionKind::evaluate())],
        TimePoint::ZERO,
        TimePoint::new(16),
    )
    .unwrap()
}

fn client(cluster: &Cluster, index: usize) -> rota_client::Client {
    rota_client::Client::connect_timeout(cluster.addrs()[index], Duration::from_secs(2)).unwrap()
}

fn obtainable(cluster: &Cluster, index: usize) -> String {
    match client(cluster, index).call(&Request::ClusterSnapshot).unwrap() {
        Response::ClusterState { resources, .. } => resources.to_string(),
        other => panic!("unexpected {other:?}"),
    }
}

fn counter(cluster: &Cluster, index: usize, name: &str) -> u64 {
    let snapshot = client(cluster, index).metrics().unwrap();
    snapshot
        .get(name)
        .and_then(|m| m.get("value"))
        .and_then(rota_obs::Json::as_f64)
        .map(|v| v as u64)
        .unwrap_or(0)
}

/// A coordinator that dies between prepare and commit leaves the
/// cluster exactly as it was: the tentative reservations expire at
/// their TTL (observable via the `server.twopc.expired` counters and
/// the obtainable-resource snapshots), nothing is committed, and the
/// same computation resubmitted through a healthy coordinator is
/// admitted exactly once.
#[test]
fn coordinator_death_mid_2pc_leaks_nothing_and_never_double_commits() {
    let mut fault_plans = BTreeMap::new();
    fault_plans.insert(
        "node2".to_string(),
        FaultPlan {
            panic_2pc_nth: Some(1),
            ..FaultPlan::default()
        },
    );
    let cluster = Cluster::launch(
        Topology::auto(3),
        &theta(&["l0", "l1", "l2"]),
        RotaPolicy,
        ClusterConfig {
            gossip_interval: Duration::from_millis(20),
            ttl: Duration::from_millis(250),
            fault_plans,
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    assert!(cluster.await_converged(Duration::from_secs(10)));
    let before_node0 = obtainable(&cluster, 0);
    let before_node1 = obtainable(&cluster, 1);

    // Submitted through node2, whose first 2PC coordination is rigged
    // to die between prepare and commit: the connection drops without
    // a response.
    let mut doomed = client(&cluster, 2);
    let result = doomed.admit(&spanning_job("drilled"), Granularity::MaximalRun);
    assert!(result.is_err(), "the drilled coordinator must die: {result:?}");

    // The prepared-but-uncommitted reservations expire: the owners'
    // obtainable snapshots return to the pre-drill state. (Polling the
    // snapshot is what drives the lazy sweep, exactly like any other
    // shard traffic.)
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let now_node0 = obtainable(&cluster, 0);
        let now_node1 = obtainable(&cluster, 1);
        if now_node0 == before_node0 && now_node1 == before_node1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "reservations never expired:\n node0 {now_node0}\n node1 {now_node1}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    for index in [0, 1] {
        assert!(
            counter(&cluster, index, "server.twopc.expired{shard=0}") >= 1,
            "node{index} never counted the expiry"
        );
    }
    for index in [0, 1] {
        let (stats, _) = client(&cluster, index).stats().unwrap();
        assert_eq!(stats.accepted, 0, "node{index} committed a dead 2PC");
    }

    // The same computation through a healthy coordinator is admitted
    // exactly once — no lingering hold blocks it, no double-commit.
    let response = client(&cluster, 0)
        .admit(&spanning_job("drilled"), Granularity::MaximalRun)
        .unwrap();
    match &response {
        Response::Decision { accepted: true, reason, .. } => {
            assert!(reason.contains("two-phase commit"), "{reason}");
        }
        other => panic!("resubmission failed: {other:?}"),
    }
    for index in [0, 1] {
        let (stats, _) = client(&cluster, index).stats().unwrap();
        assert_eq!(stats.accepted, 1, "node{index}");
    }
    cluster.shutdown();
}

/// A partitioned peer is detected by missed heartbeats; requests
/// touching its locations are rejected with the structured
/// `peer-unavailable` diagnostic instead of hanging; healing the
/// partition restores full routing.
#[test]
fn partition_degrades_routing_then_recovers() {
    let cluster = Cluster::launch(
        Topology::auto(3),
        &theta(&["l0", "l1", "l2"]),
        RotaPolicy,
        ClusterConfig {
            gossip_interval: Duration::from_millis(20),
            suspect_after: 3,
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    assert!(cluster.await_converged(Duration::from_secs(10)));

    // Cut node1 off the gossip plane. Within suspect_after rounds the
    // survivors stop hearing fresh beats and mark it suspect.
    cluster.partition("node1", true);
    let node0_health = cluster.node("node0").unwrap().health();
    let deadline = Instant::now() + Duration::from_secs(5);
    while node0_health.is_alive("node1") {
        assert!(Instant::now() < deadline, "node1 never went suspect");
        std::thread::sleep(Duration::from_millis(10));
    }

    // Degraded mode: a request needing l1 is rejected up front with
    // the structured diagnostic — the policy is never consulted and no
    // socket to the dead peer is touched.
    let response = client(&cluster, 0)
        .admit(&local_job("degraded", "l1"), Granularity::MaximalRun)
        .unwrap();
    match &response {
        Response::Decision { accepted, clause, reason, diagnostics, .. } => {
            assert!(!accepted);
            assert_eq!(
                clause.as_deref(),
                Some("cluster routing (degraded: peer unavailable)"),
                "{reason}"
            );
            let rendered: String = diagnostics.iter().map(|d| d.to_string()).collect();
            assert!(rendered.contains("peer-unavailable"), "{rendered}");
            assert!(rendered.contains("node1"), "{rendered}");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        counter(&cluster, 0, "cluster.router.degraded_rejects") >= 1,
        "degraded rejects must be counted"
    );
    // Cross-location 2PC touching the dead peer degrades identically.
    let response = client(&cluster, 2)
        .admit(&spanning_job("degraded-span"), Granularity::MaximalRun)
        .unwrap();
    match &response {
        Response::Decision { accepted: false, clause, .. } => {
            assert_eq!(
                clause.as_deref(),
                Some("cluster routing (degraded: peer unavailable)")
            );
        }
        other => panic!("unexpected {other:?}"),
    }

    // Heal the partition: gossip re-proves node1 and routing recovers.
    cluster.partition("node1", false);
    let deadline = Instant::now() + Duration::from_secs(5);
    while !node0_health.is_alive("node1") {
        assert!(Instant::now() < deadline, "node1 never recovered");
        std::thread::sleep(Duration::from_millis(10));
    }
    let response = client(&cluster, 0)
        .admit(&local_job("recovered", "l1"), Granularity::MaximalRun)
        .unwrap();
    assert!(
        matches!(response, Response::Decision { accepted: true, .. }),
        "{response:?}"
    );
    cluster.shutdown();
}

/// Injected connection resets (the `reset_first` fault) only delay
/// convergence: heartbeats are re-attempted every round, so once the
/// reset budget is burnt the cluster converges and serves cross-node
/// admissions normally.
#[test]
fn gossip_converges_despite_injected_connection_resets() {
    let mut fault_plans = BTreeMap::new();
    fault_plans.insert(
        "node1".to_string(),
        FaultPlan {
            reset_first: 8,
            ..FaultPlan::default()
        },
    );
    let cluster = Cluster::launch(
        Topology::auto(2),
        &theta(&["l0", "l1"]),
        RotaPolicy,
        ClusterConfig {
            gossip_interval: Duration::from_millis(20),
            fault_plans,
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    assert!(
        cluster.await_converged(Duration::from_secs(10)),
        "resets must only delay convergence, not prevent it"
    );
    // Convergence can complete through node1's own outbound dials, so
    // its inbound reset budget may still be live: forwarded admissions
    // fail with structured errors (never hang) until it is burnt, then
    // succeed.
    let deadline = Instant::now() + Duration::from_secs(5);
    let verdict = loop {
        let response = client(&cluster, 0)
            .admit(&local_job("after-resets", "l1"), Granularity::MaximalRun)
            .unwrap();
        match response {
            Response::Decision { .. } => break response,
            Response::Error { .. } if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("forwarding never recovered from resets: {other:?}"),
        }
    };
    assert!(
        matches!(verdict, Response::Decision { accepted: true, .. }),
        "{verdict:?}"
    );
    cluster.shutdown();
}

/// A killed node is detected like a partitioned one: the survivors
/// degrade requests touching its locations and keep serving their own.
#[test]
fn killed_node_degrades_only_its_own_locations() {
    let mut cluster = Cluster::launch(
        Topology::auto(3),
        &theta(&["l0", "l1", "l2"]),
        RotaPolicy,
        ClusterConfig {
            gossip_interval: Duration::from_millis(20),
            ..ClusterConfig::default()
        },
    )
    .unwrap();
    assert!(cluster.await_converged(Duration::from_secs(10)));
    cluster.kill("node2");
    let node0_health = cluster.node("node0").unwrap().health();
    let deadline = Instant::now() + Duration::from_secs(5);
    while node0_health.is_alive("node2") {
        assert!(Instant::now() < deadline, "node2 never went suspect");
        std::thread::sleep(Duration::from_millis(10));
    }
    // l2 is degraded…
    let response = client(&cluster, 0)
        .admit(&local_job("dead-loc", "l2"), Granularity::MaximalRun)
        .unwrap();
    assert!(
        matches!(response, Response::Decision { accepted: false, .. }),
        "{response:?}"
    );
    // …but the survivors' locations still admit, including across the
    // surviving pair.
    let response = client(&cluster, 0)
        .admit(&spanning_job("survivors"), Granularity::MaximalRun)
        .unwrap();
    assert!(
        matches!(response, Response::Decision { accepted: true, .. }),
        "{response:?}"
    );
    cluster.shutdown();
}
