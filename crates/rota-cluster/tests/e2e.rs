//! End-to-end cluster tests over real TCP: gossip convergence,
//! location routing (local fast path, forward, redirect, 2PC), offer
//! splitting, the `R0016` ownership lint, and the version handshake.

use std::time::Duration;

use rota_actor::{ActionKind, ActorComputation, DistributedComputation, Granularity};
use rota_admission::RotaPolicy;
use rota_cluster::{Cluster, ClusterConfig, Topology};
use rota_interval::{TimeInterval, TimePoint};
use rota_resource::{LocatedType, Location, Rate, ResourceSet, ResourceTerm};
use rota_server::{Request, Response};

fn theta(locations: &[&str]) -> ResourceSet {
    ResourceSet::from_terms(locations.iter().map(|l| {
        ResourceTerm::new(
            Rate::new(8),
            TimeInterval::from_ticks(0, 64).unwrap(),
            LocatedType::cpu(Location::new(*l)),
        )
    }))
    .unwrap()
}

/// A job whose every actor evaluates once at its own location — the
/// demand touches exactly `origins`.
fn job(name: &str, origins: &[&str], deadline: u64) -> DistributedComputation {
    let actors = origins
        .iter()
        .enumerate()
        .map(|(i, origin)| {
            ActorComputation::new(format!("{name}-a{i}"), *origin).then(ActionKind::evaluate())
        })
        .collect();
    DistributedComputation::new(name, actors, TimePoint::ZERO, TimePoint::new(deadline)).unwrap()
}

fn test_config() -> ClusterConfig {
    ClusterConfig {
        gossip_interval: Duration::from_millis(20),
        peer_timeout: Duration::from_secs(2),
        ..ClusterConfig::default()
    }
}

fn launch(n: usize, config: ClusterConfig) -> Cluster {
    let locations: Vec<String> = (0..n).map(|i| format!("l{i}")).collect();
    let refs: Vec<&str> = locations.iter().map(String::as_str).collect();
    let cluster =
        Cluster::launch(Topology::auto(n), &theta(&refs), RotaPolicy, config).unwrap();
    assert!(
        cluster.await_converged(Duration::from_secs(10)),
        "gossip failed to converge"
    );
    cluster
}

fn client_for(cluster: &Cluster, index: usize) -> rota_client::Client {
    rota_client::Client::connect_timeout(cluster.addrs()[index], Duration::from_secs(2)).unwrap()
}

fn accepted(response: &Response) -> bool {
    matches!(response, Response::Decision { accepted: true, .. })
}

#[test]
fn gossip_converges_and_piggybacks_supply() {
    let cluster = launch(3, test_config());
    for node in cluster.nodes() {
        assert_eq!(node.health().alive_nodes().len(), 3, "node {}", node.id());
    }
    cluster.shutdown();
}

#[test]
fn local_demand_takes_the_fast_path() {
    let cluster = launch(2, test_config());
    let mut client = client_for(&cluster, 0);
    let response = client.admit(&job("local", &["l0"], 16), Granularity::MaximalRun).unwrap();
    assert!(accepted(&response), "{response:?}");
    let (stats0, _) = client.stats().unwrap();
    assert_eq!(stats0.accepted, 1);
    let (stats1, _) = client_for(&cluster, 1).stats().unwrap();
    assert_eq!(stats1.accepted, 0, "node1 must not see a local-only job");
    cluster.shutdown();
}

#[test]
fn remote_demand_is_forwarded_to_the_owner() {
    let cluster = launch(2, test_config());
    let mut client = client_for(&cluster, 0);
    let response = client.admit(&job("remote", &["l1"], 16), Granularity::MaximalRun).unwrap();
    assert!(accepted(&response), "{response:?}");
    // The decision was made (and the commitments installed) on node1.
    let (stats1, _) = client_for(&cluster, 1).stats().unwrap();
    assert_eq!(stats1.accepted, 1);
    let (stats0, _) = client.stats().unwrap();
    assert_eq!(stats0.accepted, 0);
    cluster.shutdown();
}

#[test]
fn cross_location_demand_runs_two_phase_commit() {
    let cluster = launch(3, test_config());
    // Submit to node2, which owns neither demanded location: the
    // router coordinates nodes 0 and 1.
    let mut client = client_for(&cluster, 2);
    let response = client.admit(&job("span", &["l0", "l1"], 16), Granularity::MaximalRun).unwrap();
    match &response {
        Response::Decision { accepted, reason, .. } => {
            assert!(*accepted, "{response:?}");
            assert!(reason.contains("two-phase commit"), "{reason}");
        }
        other => panic!("unexpected response {other:?}"),
    }
    // Both owners hold the installed commitments.
    for index in [0, 1] {
        let (stats, _) = client_for(&cluster, index).stats().unwrap();
        assert_eq!(stats.accepted, 1, "node{index}");
    }
    // And a spanning job whose demand exceeds the supply obtainable
    // before its deadline is rejected by the policy, not an error.
    let heavy = DistributedComputation::new(
        "span2",
        vec![
            ActorComputation::new("span2-a0", "l0").then(ActionKind::evaluate_units(64)),
            ActorComputation::new("span2-a1", "l1").then(ActionKind::evaluate_units(64)),
        ],
        TimePoint::ZERO,
        TimePoint::new(2),
    )
    .unwrap();
    let response = client.admit(&heavy, Granularity::MaximalRun).unwrap();
    match &response {
        Response::Decision { accepted: false, .. } => {}
        other => panic!("expected a policy reject, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn redirect_mode_points_at_the_owner() {
    let cluster = launch(2, ClusterConfig {
        redirects: true,
        ..test_config()
    });
    let mut client = client_for(&cluster, 0);
    let response = client.admit(&job("redirected", &["l1"], 16), Granularity::MaximalRun).unwrap();
    match response {
        Response::Redirect { addr, reason } => {
            assert_eq!(addr, cluster.addrs()[1].to_string());
            assert!(reason.contains("node1"), "{reason}");
            // Following the redirect decides on the owner.
            let mut owner =
                rota_client::Client::connect_timeout(addr.parse().unwrap(), Duration::from_secs(2))
                    .unwrap();
            let response =
                owner.admit(&job("redirected", &["l1"], 16), Granularity::MaximalRun).unwrap();
            assert!(accepted(&response), "{response:?}");
        }
        other => panic!("expected a redirect, got {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn offers_are_split_by_owner() {
    let cluster = launch(2, test_config());
    let mut client = client_for(&cluster, 0);
    // Two terms, one per owner, offered through node0.
    let offer = ResourceSet::from_terms([
        ResourceTerm::new(
            Rate::new(2),
            TimeInterval::from_ticks(64, 96).unwrap(),
            LocatedType::cpu(Location::new("l0")),
        ),
        ResourceTerm::new(
            Rate::new(2),
            TimeInterval::from_ticks(64, 96).unwrap(),
            LocatedType::cpu(Location::new("l1")),
        ),
    ])
    .unwrap();
    assert_eq!(client.offer(&offer).unwrap(), 2);
    // node1's obtainable snapshot now covers the late window.
    let response = client_for(&cluster, 1).call(&Request::ClusterSnapshot).unwrap();
    match response {
        Response::ClusterState { resources, .. } => {
            assert!(resources.to_string().contains("96"), "{resources}");
        }
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn unowned_locations_are_rejected_with_r0016() {
    let cluster = launch(2, test_config());
    let mut client = client_for(&cluster, 0);
    let response = client.admit(&job("nowhere", &["l9"], 16), Granularity::MaximalRun).unwrap();
    match &response {
        Response::Decision { accepted, clause, diagnostics, .. } => {
            assert!(!accepted);
            assert_eq!(clause.as_deref(), Some("cluster routing (location ownership)"));
            let rendered: String =
                diagnostics.iter().map(|d| d.to_string()).collect();
            assert!(rendered.contains("R0016"), "{rendered}");
            assert!(rendered.contains("l9"), "{rendered}");
        }
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}

#[test]
fn cluster_client_follows_redirects_and_fails_over() {
    use rota_client::ClusterClient;
    // Redirect mode: the multi-address client chases the owner.
    let cluster = launch(2, ClusterConfig {
        redirects: true,
        ..test_config()
    });
    let mut client = ClusterClient::new(cluster.addrs()).unwrap();
    let response = client
        .admit(&job("chased", &["l1"], 16), Granularity::MaximalRun)
        .unwrap();
    assert!(accepted(&response), "{response:?}");
    assert_eq!(client.stats().redirects_followed, 1);
    assert_eq!(
        client.current_addr(),
        cluster.addrs()[1],
        "the client must stick to the owner it was redirected to"
    );
    cluster.shutdown();

    // Failover: with node0 dead, a client given the full address list
    // has its dial refused and rotates to the survivor, which still
    // answers admissions for its own locations.
    let mut cluster = launch(2, test_config());
    let addrs = cluster.addrs();
    cluster.kill("node0");
    let mut client = ClusterClient::new(addrs.clone()).unwrap();
    let response = client
        .admit(&job("after-kill", &["l1"], 16), Granularity::MaximalRun)
        .unwrap();
    assert!(accepted(&response), "{response:?}");
    assert!(client.stats().failovers >= 1);
    assert_eq!(client.current_addr(), addrs[1]);
    cluster.shutdown();
}

#[test]
fn version_mismatch_is_a_structured_error() {
    let cluster = launch(1, test_config());
    let mut client = client_for(&cluster, 0);
    let response = client
        .call(&Request::Hello { version: 99, node: None })
        .unwrap();
    match response {
        Response::Error { message } => {
            assert!(message.contains("version-mismatch"), "{message}");
            assert!(message.contains("99"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    cluster.shutdown();
}
