//! The federation soundness property: a 3-node cluster answers every
//! admission — local, forwarded, and cross-location two-phase — with
//! exactly the verdict a single node holding the merged resources
//! would return.
//!
//! Each case seeds a workload over three locations, launches the
//! cluster and a one-shard oracle server over the *full* supply, and
//! replays the same job stream into both, rotating which cluster node
//! receives each request. Accept/reject must match job for job (and
//! the violated theorem clause must match on rejects); afterwards the
//! union of the cluster's obtainable-resource snapshots must equal
//! the oracle's — no supply leaked, none invented.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rota_admission::RotaPolicy;
use rota_cluster::{Cluster, ClusterConfig, Topology};
use rota_resource::ResourceSet;
use rota_server::spec::{resource_set, resource_set_to_json, resources_from_json};
use rota_server::{Request, Response, Server, ServerConfig};
use rota_workload::{base_resources, generate_job, validate_job, JobShape, WorkloadConfig};

const NODES: usize = 3;
const JOBS: usize = 18;

fn shape(index: usize) -> JobShape {
    match index {
        0 => JobShape::Chain { evals: 3 },
        1 => JobShape::ForkJoin {
            actors: 3,
            evals_each: 2,
        },
        2 => JobShape::Pipeline { hops: 2 },
        _ => JobShape::Mixed,
    }
}

fn obtainable(client: &mut rota_client::Client) -> ResourceSet {
    match client.call(&Request::ClusterSnapshot).unwrap() {
        Response::ClusterState { resources, .. } => {
            let specs = resources_from_json(resources.as_array().unwrap()).unwrap();
            resource_set(&specs).unwrap()
        }
        other => panic!("unexpected snapshot response {other:?}"),
    }
}

fn verdict(response: &Response) -> (bool, Option<String>) {
    match response {
        Response::Decision {
            accepted, clause, ..
        } => (*accepted, clause.clone()),
        other => panic!("expected a decision, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cluster_verdicts_match_the_merged_oracle(
        seed in 0u64..10_000,
        shape_index in 0usize..4,
        dense in any::<bool>(),
    ) {
        let config = WorkloadConfig::new(seed)
            .with_nodes(NODES)
            .with_shape(shape(shape_index))
            .with_load(if dense { 2.0 } else { 0.8 });
        let theta = base_resources(&config);
        let cluster = Cluster::launch(
            Topology::auto(NODES),
            &theta,
            RotaPolicy,
            ClusterConfig {
                gossip_interval: Duration::from_millis(15),
                ..ClusterConfig::default()
            },
        )
        .unwrap();
        prop_assert!(cluster.await_converged(Duration::from_secs(10)));
        let oracle = Server::spawn(
            ServerConfig {
                addr: "127.0.0.1:0".parse().unwrap(),
                shards: 1,
                ..ServerConfig::default()
            },
            RotaPolicy,
            &theta,
        )
        .unwrap();
        let mut oracle_client =
            rota_client::Client::connect_timeout(oracle.local_addr(), Duration::from_secs(2))
                .unwrap();
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(3) ^ 0x5eed);
        for i in 0..JOBS {
            let arrival = (i as u64 * 3) % (config.horizon / 2);
            let job = generate_job(&config, &mut rng, &format!("job{i}"), arrival);
            if validate_job(&theta, &job).has_errors() {
                continue;
            }
            let mut node_client = rota_client::Client::connect_timeout(
                cluster.addrs()[i % NODES],
                Duration::from_secs(2),
            )
            .unwrap();
            let federated = node_client.admit(&job, config.granularity).unwrap();
            let single = oracle_client.admit(&job, config.granularity).unwrap();
            let (fed_accepted, fed_clause) = verdict(&federated);
            let (one_accepted, one_clause) = verdict(&single);
            prop_assert_eq!(
                fed_accepted, one_accepted,
                "job{} diverged: cluster {:?} vs oracle {:?}", i, federated, single
            );
            if !fed_accepted {
                prop_assert_eq!(
                    fed_clause, one_clause,
                    "job{} rejected for different clauses", i
                );
            }
        }
        // The cluster's merged obtainable state equals the oracle's:
        // every accept installed the same commitments on the owning
        // nodes that the oracle installed on its single state.
        let mut merged = ResourceSet::default();
        for addr in cluster.addrs() {
            let mut client =
                rota_client::Client::connect_timeout(addr, Duration::from_secs(2)).unwrap();
            merged = merged.union(&obtainable(&mut client)).unwrap();
        }
        let oracle_state = obtainable(&mut oracle_client);
        prop_assert_eq!(
            resource_set_to_json(&merged).to_string(),
            resource_set_to_json(&oracle_state).to_string()
        );
        cluster.shutdown();
        oracle.shutdown();
    }
}
