//! Cluster-aware client: a list of node addresses, sticky round-robin
//! failover on transport errors, and `redirect` following.
//!
//! A [`ClusterClient`] stays on one node until that node stops
//! answering, then rotates to the next address in the list and retries
//! the in-flight request — the cluster router accepts any admission
//! anywhere, so every node is a legitimate entry point. Servers running
//! in redirect mode answer remote-location admissions with
//! `Response::Redirect`; the client follows up to
//! [`ClusterClient::with_max_redirects`] hops (default 3) before giving
//! up, so a misconfigured redirect cycle surfaces as an error instead
//! of a hang.

use std::net::SocketAddr;
use std::time::Duration;

use rota_actor::{DistributedComputation, Granularity};
use rota_server::protocol::{Request, Response};
use rota_server::spec::{computation_to_json, ComputationSpec};

use crate::{Client, ClientError};

/// What the failover layer has done so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterClientStats {
    /// Connections dialed (first dials, failover dials, redirect dials).
    pub dials: u64,
    /// Times the client rotated to the next node after a transport
    /// failure.
    pub failovers: u64,
    /// `redirect` responses followed to the named owner.
    pub redirects_followed: u64,
}

/// A blocking client over a set of cluster node addresses.
pub struct ClusterClient {
    addrs: Vec<SocketAddr>,
    cursor: usize,
    connection: Option<Client>,
    timeout: Duration,
    max_redirects: usize,
    stats: ClusterClientStats,
}

impl ClusterClient {
    /// Builds a client over `addrs`; connections are dialed lazily, so
    /// this fails only on an empty list.
    pub fn new(addrs: Vec<SocketAddr>) -> Result<ClusterClient, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Server("no cluster addresses given".into()));
        }
        Ok(ClusterClient {
            addrs,
            cursor: 0,
            connection: None,
            timeout: Duration::from_secs(5),
            max_redirects: 3,
            stats: ClusterClientStats::default(),
        })
    }

    /// Bounds each dial.
    pub fn with_timeout(mut self, timeout: Duration) -> ClusterClient {
        self.timeout = timeout;
        self
    }

    /// Bounds how many `redirect` hops a single request may follow.
    pub fn with_max_redirects(mut self, hops: usize) -> ClusterClient {
        self.max_redirects = hops;
        self
    }

    /// The node the next request will be sent to.
    pub fn current_addr(&self) -> SocketAddr {
        self.addrs[self.cursor]
    }

    /// Failover and redirect counters.
    pub fn stats(&self) -> ClusterClientStats {
        self.stats
    }

    /// Sends `request`, rotating through the address list on transport
    /// errors (each node is tried once per call) and following
    /// redirects. Server-level errors and decisions are returned as-is
    /// — only a node that cannot answer at all triggers failover.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let mut last: Option<ClientError> = None;
        for attempt in 0..self.addrs.len() {
            if attempt > 0 {
                self.stats.failovers += 1;
                self.connection = None;
                self.cursor = (self.cursor + 1) % self.addrs.len();
            }
            match self.call_current(request) {
                Ok(response) => return self.follow_redirects(request, response),
                Err(err @ (ClientError::Io(_) | ClientError::Frame(_))) => {
                    last = Some(err);
                }
                Err(err) => return Err(err),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Server("no cluster addresses given".into())))
    }

    /// Submits a computation for admission anywhere in the cluster.
    pub fn admit(
        &mut self,
        computation: &DistributedComputation,
        granularity: Granularity,
    ) -> Result<Response, ClientError> {
        let spec = ComputationSpec::from_json(&computation_to_json(computation))?;
        self.call(&Request::Admit {
            computation: spec,
            granularity,
            forwarded: false,
        })
    }

    fn call_current(&mut self, request: &Request) -> Result<Response, ClientError> {
        let addr = self.addrs[self.cursor];
        let timeout = self.timeout;
        let client = match &mut self.connection {
            Some(client) => client,
            slot @ None => {
                self.stats.dials += 1;
                slot.insert(Client::connect_timeout(addr, timeout)?)
            }
        };
        client.call(request)
    }

    /// Chases `redirect` answers to the named owner, re-sending the
    /// same request on a fresh connection per hop. The final node
    /// becomes the sticky connection — a client that keeps admitting at
    /// the same location lands on the owner directly from then on.
    fn follow_redirects(
        &mut self,
        request: &Request,
        mut response: Response,
    ) -> Result<Response, ClientError> {
        for _ in 0..self.max_redirects {
            let Response::Redirect { addr, .. } = &response else {
                return Ok(response);
            };
            let target: SocketAddr = addr
                .parse()
                .map_err(|_| ClientError::Server(format!("unparseable redirect to {addr:?}")))?;
            self.stats.redirects_followed += 1;
            self.stats.dials += 1;
            let mut next = Client::connect_timeout(target, self.timeout)?;
            response = next.call(request)?;
            self.connection = Some(next);
            if let Some(index) = self.addrs.iter().position(|a| *a == target) {
                self.cursor = index;
            }
        }
        match response {
            Response::Redirect { addr, .. } => Err(ClientError::Server(format!(
                "redirect limit ({}) exceeded; last hop pointed at {addr}",
                self.max_redirects
            ))),
            response => Ok(response),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, BufWriter};
    use std::net::TcpListener;
    use std::thread;

    use rota_server::protocol::{read_frame, write_frame};

    /// A one-connection stub node: answers every request on its first
    /// connection with `respond(request_count)`, then exits.
    fn stub_node(respond: impl Fn(u64) -> Response + Send + 'static) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = BufWriter::new(stream);
            let mut count = 0u64;
            while let Ok(line) = read_frame(&mut reader, rota_server::MAX_FRAME_BYTES) {
                let _ = Request::from_line(&line);
                count += 1;
                if write_frame(&mut writer, &respond(count).to_json()).is_err() {
                    break;
                }
            }
        });
        addr
    }

    /// An address that accepts the dial and immediately hangs up.
    fn dead_node() -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                drop(stream);
            }
        });
        addr
    }

    #[test]
    fn empty_address_list_is_rejected() {
        assert!(ClusterClient::new(Vec::new()).is_err());
    }

    #[test]
    fn transport_failure_rotates_to_the_next_node() {
        let dead = dead_node();
        let live = stub_node(|_| Response::Pong);
        let mut client = ClusterClient::new(vec![dead, live]).unwrap();
        let response = client.call(&Request::Ping).unwrap();
        assert!(matches!(response, Response::Pong));
        assert_eq!(client.stats().failovers, 1);
        assert_eq!(client.current_addr(), live, "sticks to the survivor");
        // The next request goes straight to the live node.
        let response = client.call(&Request::Ping).unwrap();
        assert!(matches!(response, Response::Pong));
        assert_eq!(client.stats().failovers, 1);
    }

    #[test]
    fn redirects_are_followed_to_the_owner() {
        let owner = stub_node(|_| Response::Pong);
        let front = stub_node(move |_| Response::Redirect {
            addr: owner.to_string(),
            reason: "location `l1` is owned by node1".into(),
        });
        let mut client = ClusterClient::new(vec![front, owner]).unwrap();
        let response = client.call(&Request::Ping).unwrap();
        assert!(matches!(response, Response::Pong));
        assert_eq!(client.stats().redirects_followed, 1);
        assert_eq!(client.current_addr(), owner, "sticks to the owner");
    }

    #[test]
    fn redirect_cycles_hit_the_hop_limit() {
        // A node that redirects every request back to itself. Each hop
        // dials fresh, so every connection needs its own serving
        // thread — the earlier ones stay open while the next is served.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        thread::spawn(move || {
            while let Ok((stream, _)) = listener.accept() {
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = BufWriter::new(stream);
                    while let Ok(_line) = read_frame(&mut reader, rota_server::MAX_FRAME_BYTES) {
                        let response = Response::Redirect {
                            addr: addr.to_string(),
                            reason: "chasing my own tail".into(),
                        };
                        if write_frame(&mut writer, &response.to_json()).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        let mut client = ClusterClient::new(vec![addr]).unwrap().with_max_redirects(3);
        match client.call(&Request::Ping) {
            Err(ClientError::Server(message)) => {
                assert!(message.contains("redirect limit"), "{message}");
            }
            other => panic!("expected a redirect-limit error, got {other:?}"),
        }
        assert_eq!(client.stats().redirects_followed, 3);
    }

    #[test]
    fn server_errors_do_not_trigger_failover() {
        let fussy = stub_node(|_| Response::Error {
            message: "version-mismatch".into(),
        });
        let never = dead_node();
        let mut client = ClusterClient::new(vec![fussy, never]).unwrap();
        // An `error` answer is a real answer: it comes back verbatim
        // instead of burning the other nodes.
        let response = client.call(&Request::Ping).unwrap();
        assert!(matches!(response, Response::Error { .. }));
        assert_eq!(client.stats().failovers, 0);
    }

    #[test]
    fn all_nodes_down_returns_the_last_transport_error() {
        let mut client = ClusterClient::new(vec![dead_node(), dead_node()]).unwrap();
        match client.call(&Request::Ping) {
            Err(ClientError::Io(_) | ClientError::Frame(_)) => {}
            other => panic!("expected a transport error, got {other:?}"),
        }
        assert_eq!(client.stats().failovers, 1);
    }
}
