//! # rota-client — talk to a rota-server admission service
//!
//! A blocking [`Client`] over the newline-delimited JSON protocol of
//! [`rota_server::protocol`], plus a multi-connection [`loadtest`]
//! harness that drives a server with [`rota_workload`]-generated
//! traffic and reports throughput, latency percentiles, and acceptance
//! rates. The [`resilient`] module layers deterministic retry,
//! exponential backoff with seeded jitter, per-request deadline
//! budgets, and p99-triggered hedging on top of the raw client. The
//! [`cluster`] module adds a multi-address [`ClusterClient`] with
//! round-robin failover and `redirect` following for rota-cluster
//! federations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod loadtest;
pub mod resilient;

use std::fmt;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rota_actor::{DistributedComputation, Granularity};
use rota_admission::ControllerStats;
use rota_obs::Json;
use rota_server::protocol::{read_frame, write_frame, FrameError, Request, Response};
use rota_server::spec::{computation_to_json, ComputationSpec, SpecError};

pub use cluster::{ClusterClient, ClusterClientStats};
pub use loadtest::{request_schedule, run_loadtest, LoadtestConfig, LoadtestReport};
pub use resilient::{HedgeConfig, ResilienceStats, ResilientClient, RetryConfig};

/// Anything that can go wrong on a client call.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server closed the connection or sent an unreadable frame.
    Frame(FrameError),
    /// The frame was valid JSON but not a valid response document.
    Spec(SpecError),
    /// The server answered with an `error` response.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::Frame(err) => write!(f, "frame error: {err}"),
            ClientError::Spec(err) => write!(f, "bad response document: {err}"),
            ClientError::Server(message) => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> Self {
        ClientError::Frame(err)
    }
}

impl From<SpecError> for ClientError {
    fn from(err: SpecError) -> Self {
        ClientError::Spec(err)
    }
}

/// A blocking connection to a rota-server instance.
///
/// One request/response in flight at a time; reconnect by constructing
/// a new client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> Result<Client, ClientError> {
        Client::wrap(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on how long the dial may take.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> Result<Client, ClientError> {
        Client::wrap(TcpStream::connect_timeout(&addr, timeout)?)
    }

    fn wrap(stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request frame and reads one response frame.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &request.to_json())?;
        let line = read_frame(&mut self.reader, rota_server::MAX_FRAME_BYTES)?;
        Ok(Response::from_line(&line)?)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Version handshake: announce our [`rota_server::PROTOCOL_VERSION`]
    /// and confirm the server speaks it. A mismatched server answers
    /// with a structured `version-mismatch` error (surfaced as
    /// [`ClientError::Server`]) instead of a decode failure.
    pub fn hello(&mut self) -> Result<u64, ClientError> {
        self.hello_as(None)
    }

    /// [`Client::hello`] with a cluster node identity attached (peers
    /// introduce themselves by node id).
    pub fn hello_as(&mut self, node: Option<&str>) -> Result<u64, ClientError> {
        match self.call(&Request::Hello {
            version: rota_server::PROTOCOL_VERSION,
            node: node.map(str::to_string),
        })? {
            Response::Welcome { version } => Ok(version),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a computation for admission at the given granularity.
    /// Returns the raw response — `decision` or `overloaded` are both
    /// legitimate outcomes the caller must distinguish.
    pub fn admit(
        &mut self,
        computation: &DistributedComputation,
        granularity: Granularity,
    ) -> Result<Response, ClientError> {
        let spec = ComputationSpec::from_json(&computation_to_json(computation))?;
        self.call(&Request::Admit {
            computation: spec,
            granularity,
            forwarded: false,
        })
    }

    /// Offers additional resources to the server.
    pub fn offer(&mut self, theta: &rota_resource::ResourceSet) -> Result<u64, ClientError> {
        let doc = rota_server::spec::resource_set_to_json(theta);
        let specs = rota_server::spec::resources_from_json(
            doc.as_array().unwrap_or(&[]),
        )?;
        match self.call(&Request::Offer {
            resources: specs,
            forwarded: false,
        })? {
            Response::Offered { terms } => Ok(terms),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches aggregated controller statistics and the shard count.
    pub fn stats(&mut self) -> Result<(ControllerStats, usize), ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats { stats, shards } => Ok((stats, shards)),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a metrics snapshot as a JSON document.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics { snapshot } => Ok(snapshot),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(response: &Response) -> ClientError {
    match response {
        Response::Error { message } => ClientError::Server(message.clone()),
        other => ClientError::Server(format!("unexpected response: {:?}", other.to_json())),
    }
}
