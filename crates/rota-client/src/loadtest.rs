//! Multi-connection load-test harness for rota-server.
//!
//! Pre-generates a batch of [`rota_workload`] computations, fans them
//! out over `connections` concurrent client connections, and reports
//! throughput, latency percentiles, and the accept / reject /
//! overloaded split. Overloaded answers are the server's explicit
//! backpressure — the harness counts them instead of retrying, so a
//! saturated server is visible in the report rather than smoothed over.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use rota_actor::Granularity;
use rota_server::protocol::{Request, Response};
use rota_server::spec::{computation_to_json, ComputationSpec};
use rota_workload::{generate_job, WorkloadConfig};

use crate::resilient::{HedgeConfig, ResilientClient, RetryConfig};
use crate::{Client, ClientError};

/// What to throw at the server.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Server address.
    pub addr: SocketAddr,
    /// Cluster mode: when non-empty, this is the full node address
    /// list and connections are spread over it round-robin
    /// (connection `i` dials `cluster[i % cluster.len()]`); `addr` is
    /// ignored. Empty (the default) drives the single server at
    /// `addr`.
    pub cluster: Vec<SocketAddr>,
    /// Concurrent client connections.
    pub connections: usize,
    /// Total jobs submitted across all connections.
    pub jobs: usize,
    /// Workload generator knobs (shape, nodes, slack, seed, …).
    pub workload: WorkloadConfig,
    /// Pricing granularity sent with each admit.
    pub granularity: Granularity,
    /// Deterministic mode: statically partition jobs round-robin over
    /// connections instead of racing a shared cursor, so the request
    /// schedule is a pure function of the config (see
    /// [`request_schedule`]).
    pub deterministic: bool,
    /// Retry/backoff for each connection; `None` submits each job once
    /// and counts failures, which keeps saturation visible.
    pub retry: Option<RetryConfig>,
    /// Hedged requests (requires `retry`).
    pub hedge: Option<HedgeConfig>,
}

impl LoadtestConfig {
    /// A small default battery against `addr`: 4 connections, 200 jobs.
    pub fn new(addr: SocketAddr) -> Self {
        LoadtestConfig {
            addr,
            cluster: Vec::new(),
            connections: 4,
            jobs: 200,
            workload: WorkloadConfig::new(7),
            granularity: Granularity::MaximalRun,
            deterministic: false,
            retry: None,
            hedge: None,
        }
    }
}

/// One submitted job's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Accepted,
    Rejected,
    Overloaded,
    Error,
}

/// Aggregated results of one load-test run.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs the server admitted.
    pub accepted: usize,
    /// Jobs the server refused (policy said no).
    pub rejected: usize,
    /// Jobs bounced with explicit backpressure (`overloaded`).
    pub overloaded: usize,
    /// Jobs that failed at the transport or protocol layer.
    pub errors: usize,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Per-request round-trip latencies in nanoseconds, sorted.
    pub latencies_ns: Vec<u64>,
    /// First transport/protocol error observed, for diagnostics.
    pub first_error: Option<String>,
    /// Retries performed by the resilience layer (0 without `retry`).
    pub retries: u64,
    /// Hedge attempts fired by the resilience layer.
    pub hedges: u64,
}

impl LoadtestReport {
    /// Completed requests per second (decisions + backpressure answers).
    pub fn throughput_rps(&self) -> f64 {
        let answered = (self.jobs - self.errors) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }

    /// Latency at percentile `p` in `[0, 100]`, nanoseconds.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let rank = (p / 100.0 * (self.latencies_ns.len() - 1) as f64).round() as usize;
        self.latencies_ns[rank.min(self.latencies_ns.len() - 1)]
    }

    /// Fraction of *decided* jobs (accept + reject) that were accepted.
    pub fn acceptance_rate(&self) -> f64 {
        let decided = self.accepted + self.rejected;
        if decided > 0 {
            self.accepted as f64 / decided as f64
        } else {
            0.0
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self, policy: &str) -> String {
        let us = |ns: u64| ns as f64 / 1_000.0;
        let mut out = String::new();
        out.push_str(&format!("loadtest: policy={policy} jobs={}\n", self.jobs));
        out.push_str(&format!(
            "  outcomes     accepted={} rejected={} overloaded={} errors={}\n",
            self.accepted, self.rejected, self.overloaded, self.errors
        ));
        out.push_str(&format!(
            "  acceptance   {:.1}% of decided\n",
            self.acceptance_rate() * 100.0
        ));
        out.push_str(&format!(
            "  throughput   {:.0} req/s over {:.2}s\n",
            self.throughput_rps(),
            self.elapsed.as_secs_f64()
        ));
        out.push_str(&format!(
            "  latency      p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us\n",
            us(self.percentile_ns(50.0)),
            us(self.percentile_ns(90.0)),
            us(self.percentile_ns(99.0)),
            us(self.latencies_ns.last().copied().unwrap_or(0)),
        ));
        if self.retries > 0 || self.hedges > 0 {
            out.push_str(&format!(
                "  resilience   retries={} hedges={}\n",
                self.retries, self.hedges
            ));
        }
        if let Some(err) = &self.first_error {
            out.push_str(&format!("  first error  {err}\n"));
        }
        out
    }
}

/// Runs a load test against a live server.
///
/// Fails only if the batch cannot be prepared; per-request failures are
/// tallied as `errors` in the report instead of aborting the run.
pub fn run_loadtest(config: &LoadtestConfig) -> Result<LoadtestReport, ClientError> {
    let jobs = prepare_jobs(config)?;
    let total = jobs.len();
    let shared = Arc::new(jobs);
    let cursor = Arc::new(AtomicUsize::new(0));
    let connections = config.connections.max(1);
    let started = Instant::now();
    let mut handles = Vec::with_capacity(connections);
    for connection in 0..connections {
        let shared = Arc::clone(&shared);
        let cursor = Arc::clone(&cursor);
        let addr = if config.cluster.is_empty() {
            config.addr
        } else {
            config.cluster[connection % config.cluster.len()]
        };
        let schedule = if config.deterministic {
            Schedule::Fixed(partition(total, connections, connection))
        } else {
            Schedule::Shared(cursor)
        };
        // Each connection gets its own jitter stream so same-seed runs
        // replay the exact same retry schedule per connection.
        let resilience = config.retry.as_ref().map(|retry| {
            (
                RetryConfig {
                    seed: retry.seed.wrapping_add(connection as u64),
                    ..retry.clone()
                },
                config.hedge.clone(),
            )
        });
        handles.push(std::thread::spawn(move || {
            worker(addr, &shared, schedule, resilience)
        }));
    }
    let mut outcomes = Vec::with_capacity(total);
    let mut retries = 0u64;
    let mut hedges = 0u64;
    for handle in handles {
        // PANIC-OK: a worker panic is a harness bug; crash loudly
        // rather than report a partial, silently-wrong load test.
        let (samples, stats) = handle.join().expect("loadtest worker panicked");
        outcomes.extend(samples);
        retries += stats.retries;
        hedges += stats.hedges;
    }
    let elapsed = started.elapsed();

    let mut report = LoadtestReport {
        jobs: total,
        accepted: 0,
        rejected: 0,
        overloaded: 0,
        errors: 0,
        elapsed,
        latencies_ns: Vec::with_capacity(outcomes.len()),
        first_error: None,
        retries,
        hedges,
    };
    for (outcome, ns, err) in outcomes {
        match outcome {
            Outcome::Accepted => report.accepted += 1,
            Outcome::Rejected => report.rejected += 1,
            Outcome::Overloaded => report.overloaded += 1,
            Outcome::Error => {
                report.errors += 1;
                if report.first_error.is_none() {
                    report.first_error = err;
                }
                continue;
            }
        }
        report.latencies_ns.push(ns);
    }
    report.latencies_ns.sort_unstable();
    Ok(report)
}

/// The job indices connection `index` submits, in order, under the
/// deterministic round-robin partition.
fn partition(total: usize, connections: usize, index: usize) -> Vec<usize> {
    (index..total).step_by(connections.max(1)).collect()
}

/// The full request schedule of a deterministic run: for each
/// connection, the names of the jobs it will submit, in submission
/// order. A pure function of the config — two calls with equal configs
/// return equal schedules, which is what the `--seed` regression test
/// pins down.
pub fn request_schedule(config: &LoadtestConfig) -> Result<Vec<Vec<String>>, ClientError> {
    let jobs = prepare_jobs(config)?;
    let connections = config.connections.max(1);
    Ok((0..connections)
        .map(|c| {
            partition(jobs.len(), connections, c)
                .into_iter()
                .map(|i| jobs[i].0.name.clone())
                .collect()
        })
        .collect())
}

/// Draws the batch of computations and pre-encodes them as wire specs,
/// so generation cost stays out of the measured window.
fn prepare_jobs(
    config: &LoadtestConfig,
) -> Result<Vec<(ComputationSpec, Granularity)>, ClientError> {
    let mut rng = StdRng::seed_from_u64(config.workload.seed);
    let horizon = config.workload.horizon.max(4);
    let mut jobs = Vec::with_capacity(config.jobs);
    for i in 0..config.jobs {
        // Spread arrivals over the front of the horizon so generated
        // deadlines stay inside it.
        let arrival = rng.gen_range(0..horizon / 2);
        let computation = generate_job(&config.workload, &mut rng, &format!("lt{i}"), arrival);
        let spec = ComputationSpec::from_json(&computation_to_json(&computation))?;
        jobs.push((spec, config.granularity));
    }
    Ok(jobs)
}

type Sample = (Outcome, u64, Option<String>);

/// How a worker picks its next job: racing a shared cursor (fast,
/// nondeterministic interleaving) or walking a fixed index list
/// (deterministic mode).
enum Schedule {
    Shared(Arc<AtomicUsize>),
    Fixed(Vec<usize>),
}

impl Schedule {
    fn next(&mut self, total: usize) -> Option<usize> {
        match self {
            Schedule::Shared(cursor) => {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                (index < total).then_some(index)
            }
            Schedule::Fixed(indices) => {
                if indices.is_empty() {
                    None
                } else {
                    Some(indices.remove(0))
                }
            }
        }
    }
}

fn worker(
    addr: SocketAddr,
    jobs: &[(ComputationSpec, Granularity)],
    mut schedule: Schedule,
    resilience: Option<(RetryConfig, Option<HedgeConfig>)>,
) -> (Vec<Sample>, crate::resilient::ResilienceStats) {
    match resilience {
        Some((retry, hedge)) => {
            let mut client = ResilientClient::new(addr, retry);
            if let Some(hedge) = hedge {
                client = client.with_hedging(hedge);
            }
            let mut samples = Vec::new();
            while let Some(index) = schedule.next(jobs.len()) {
                let (spec, granularity) = &jobs[index];
                let start = Instant::now();
                let sample = match client.admit(spec.clone(), *granularity) {
                    Ok(Response::Decision { accepted, .. }) => {
                        let ns =
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let outcome = if accepted {
                            Outcome::Accepted
                        } else {
                            Outcome::Rejected
                        };
                        (outcome, ns, None)
                    }
                    Ok(Response::Overloaded { .. }) => {
                        let ns =
                            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        (Outcome::Overloaded, ns, None)
                    }
                    Ok(other) => (
                        Outcome::Error,
                        0,
                        Some(format!("unexpected response: {:?}", other.to_json())),
                    ),
                    Err(err) => (Outcome::Error, 0, Some(err.to_string())),
                };
                samples.push(sample);
            }
            (samples, client.stats())
        }
        None => (
            raw_worker(addr, jobs, &mut schedule),
            crate::resilient::ResilienceStats::default(),
        ),
    }
}

/// The original single-shot path: one connection, no retries, failures
/// tallied so saturation stays visible in the report.
fn raw_worker(
    addr: SocketAddr,
    jobs: &[(ComputationSpec, Granularity)],
    schedule: &mut Schedule,
) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut client = match Client::connect_timeout(addr, Duration::from_secs(5)) {
        Ok(client) => client,
        Err(err) => {
            // Connection refused: drain our share of the work as errors
            // so the report still accounts for every job.
            let mut first = Some(err.to_string());
            while schedule.next(jobs.len()).is_some() {
                samples.push((Outcome::Error, 0, first.take()));
            }
            return samples;
        }
    };
    while let Some(index) = schedule.next(jobs.len()) {
        let (spec, granularity) = &jobs[index];
        let request = Request::Admit {
            computation: spec.clone(),
            granularity: *granularity,
            forwarded: false,
        };
        let start = Instant::now();
        match client.call(&request) {
            Ok(Response::Decision { accepted, .. }) => {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                let outcome = if accepted {
                    Outcome::Accepted
                } else {
                    Outcome::Rejected
                };
                samples.push((outcome, ns, None));
            }
            Ok(Response::Overloaded { .. }) => {
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                samples.push((Outcome::Overloaded, ns, None));
            }
            Ok(other) => {
                samples.push((
                    Outcome::Error,
                    0,
                    Some(format!("unexpected response: {:?}", other.to_json())),
                ));
            }
            Err(err) => {
                samples.push((Outcome::Error, 0, Some(err.to_string())));
                // The connection may be dead; try to re-establish once
                // per failure so one hiccup doesn't doom the worker.
                match Client::connect_timeout(addr, Duration::from_secs(5)) {
                    Ok(fresh) => client = fresh,
                    Err(_) => {
                        let mut first = None;
                        while schedule.next(jobs.len()).is_some() {
                            samples.push((Outcome::Error, 0, first.take()));
                        }
                        break;
                    }
                }
            }
        }
    }
    samples
}
