//! Retry, backoff, and hedging on top of the blocking [`Client`].
//!
//! A [`ResilientClient`] wraps one server address with three layers of
//! fault tolerance, all deterministic under a seed:
//!
//! - **retry with exponential backoff + jitter** — transport errors and
//!   `overloaded` bounces are retried up to [`RetryConfig::max_attempts`]
//!   times; the delay doubles each attempt and is jittered to a
//!   seeded-random point in `[50%, 100%]` of the nominal value so
//!   retrying clients do not stampede in lockstep;
//! - **per-request deadline budgets** — every admit gets
//!   [`RetryConfig::budget`] of wall-clock time; a retry that cannot
//!   fit its backoff sleep inside the remaining budget is abandoned and
//!   the last outcome returned;
//! - **deadline-aware hedging** — an optional second attempt fired when
//!   the first has been in flight for the client's running p99 latency
//!   estimate; whichever attempt answers first wins.
//!
//! Retrying an admit whose *response* was lost (connection reset,
//! truncated frame) is safe because rota-server treats computation
//! names as idempotency keys: the retry lands on the same shard
//! (deterministic routing) and gets the original verdict from its
//! decision cache rather than committing twice. The same property makes
//! hedge duplicates harmless.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use rand::{rngs::StdRng, Rng, SeedableRng};
use rota_actor::Granularity;
use rota_server::protocol::{Request, Response};
use rota_server::spec::ComputationSpec;

use crate::{Client, ClientError};

/// Retry/backoff/budget knobs. All defaults are intentionally modest;
/// chaos tests crank `max_attempts` up.
#[derive(Debug, Clone)]
pub struct RetryConfig {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per attempt.
    pub base_delay: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_delay: Duration,
    /// Wall-clock budget per request, covering every attempt and sleep.
    pub budget: Duration,
    /// Seed for the jitter stream (reproducible retry schedules).
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_attempts: 4,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            budget: Duration::from_secs(5),
            seed: 0,
        }
    }
}

/// Hedged-request knobs.
#[derive(Debug, Clone)]
pub struct HedgeConfig {
    /// Latency samples needed before the p99 estimate is trusted;
    /// until then [`HedgeConfig::initial_delay`] is used.
    pub min_samples: usize,
    /// Hedge delay before enough samples exist.
    pub initial_delay: Duration,
    /// Lower clamp on the hedge delay (don't hedge *everything*).
    pub floor: Duration,
    /// Upper clamp on the hedge delay.
    pub cap: Duration,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        HedgeConfig {
            min_samples: 16,
            initial_delay: Duration::from_millis(50),
            floor: Duration::from_millis(1),
            cap: Duration::from_millis(250),
        }
    }
}

/// Counters describing what the resilience layer actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Attempts sent (including firsts, retries, and hedges).
    pub attempts: u64,
    /// Retries after a transport error or `overloaded` bounce.
    pub retries: u64,
    /// Hedge attempts fired.
    pub hedges: u64,
    /// Requests won by the hedge attempt rather than the primary.
    pub hedge_wins: u64,
    /// Fresh connections dialed after a transport failure.
    pub reconnects: u64,
}

/// How many recent request latencies feed the p99 hedge estimate.
const LATENCY_WINDOW: usize = 256;

/// A [`Client`] wrapper that retries, backs off, and (optionally)
/// hedges — deterministically under [`RetryConfig::seed`].
pub struct ResilientClient {
    addr: SocketAddr,
    retry: RetryConfig,
    hedge: Option<HedgeConfig>,
    rng: StdRng,
    connection: Option<Client>,
    latencies: VecDeque<u64>,
    stats: ResilienceStats,
}

impl ResilientClient {
    /// Builds a resilient client for `addr`; connections are dialed
    /// lazily, so this never fails.
    pub fn new(addr: SocketAddr, retry: RetryConfig) -> ResilientClient {
        let rng = StdRng::seed_from_u64(retry.seed);
        ResilientClient {
            addr,
            retry,
            hedge: None,
            rng,
            connection: None,
            latencies: VecDeque::new(),
            stats: ResilienceStats::default(),
        }
    }

    /// Enables hedged requests.
    pub fn with_hedging(mut self, hedge: HedgeConfig) -> ResilientClient {
        self.hedge = Some(hedge);
        self
    }

    /// What the resilience layer has done so far.
    pub fn stats(&self) -> ResilienceStats {
        self.stats
    }

    /// The hedge delay currently in force: running p99 of the latency
    /// window, clamped to `[floor, cap]`.
    pub fn hedge_delay(&self) -> Option<Duration> {
        let hedge = self.hedge.as_ref()?;
        if self.latencies.len() < hedge.min_samples.max(1) {
            return Some(hedge.initial_delay.clamp(hedge.floor, hedge.cap));
        }
        let mut sorted: Vec<u64> = self.latencies.iter().copied().collect();
        sorted.sort_unstable();
        let rank = (0.99 * (sorted.len() - 1) as f64).round() as usize;
        let p99 = Duration::from_nanos(sorted[rank.min(sorted.len() - 1)]);
        Some(p99.clamp(hedge.floor, hedge.cap))
    }

    /// Submits an admit with retries, backoff, budget, and hedging.
    ///
    /// Returns the first decisive response. `overloaded` is retried;
    /// if retries or budget run out it is returned as-is (the caller
    /// sees the backpressure instead of a fabricated error).
    pub fn admit(
        &mut self,
        computation: ComputationSpec,
        granularity: Granularity,
    ) -> Result<Response, ClientError> {
        let request = Request::Admit {
            computation,
            granularity,
            forwarded: false,
        };
        let deadline = Instant::now() + self.retry.budget;
        let mut last: Result<Response, ClientError> =
            Err(ClientError::Server("no attempt made".into()));
        for attempt in 0..self.retry.max_attempts.max(1) {
            if attempt > 0 {
                self.stats.retries += 1;
                let sleep = self.backoff(attempt);
                // A retry we cannot afford (sleep would cross the
                // budget deadline) is not attempted at all.
                if Instant::now() + sleep >= deadline {
                    return last;
                }
                std::thread::sleep(sleep);
            }
            let started = Instant::now();
            let outcome = self.attempt(&request, deadline);
            match outcome {
                Ok(response @ Response::Overloaded { .. }) => {
                    last = Ok(response);
                }
                Ok(response) => {
                    self.record_latency(started.elapsed());
                    return Ok(response);
                }
                Err(err) => {
                    // The connection is suspect after any transport
                    // error; next attempt dials fresh.
                    self.connection = None;
                    last = Err(err);
                }
            }
            if Instant::now() >= deadline {
                return last;
            }
        }
        last
    }

    /// One attempt: hedged when configured, plain otherwise.
    fn attempt(&mut self, request: &Request, deadline: Instant) -> Result<Response, ClientError> {
        self.stats.attempts += 1;
        match self.hedge_delay() {
            Some(delay) => self.hedged_call(request, delay, deadline),
            None => self.plain_call(request),
        }
    }

    fn plain_call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let client = match &mut self.connection {
            Some(client) => client,
            slot @ None => {
                self.stats.reconnects += u64::from(self.stats.attempts > 1);
                slot.insert(Client::connect_timeout(self.addr, Duration::from_secs(5))?)
            }
        };
        request_on(client, request)
    }

    /// Fires the primary attempt on its own thread; if it has not
    /// answered within `delay`, fires a hedge attempt on a second
    /// connection. First answer wins; the loser's thread parks on a
    /// dead channel and exits on its own.
    fn hedged_call(
        &mut self,
        request: &Request,
        delay: Duration,
        deadline: Instant,
    ) -> Result<Response, ClientError> {
        let (tx, rx) = mpsc::channel::<(bool, Result<Response, ClientError>)>();
        spawn_attempt(self.addr, request.clone(), false, tx.clone());
        match rx.recv_timeout(delay) {
            Ok((_, outcome)) => return outcome,
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(ClientError::Server("attempt thread died".into()))
            }
        }
        self.stats.hedges += 1;
        spawn_attempt(self.addr, request.clone(), true, tx);
        let remaining = deadline
            .saturating_duration_since(Instant::now())
            .max(Duration::from_millis(1));
        match rx.recv_timeout(remaining) {
            Ok((hedged, outcome)) => {
                if hedged && outcome.is_ok() {
                    self.stats.hedge_wins += 1;
                }
                outcome
            }
            Err(_) => Err(ClientError::Server(
                "request budget exhausted while hedging".into(),
            )),
        }
    }

    /// Nominal exponential backoff for `attempt` (1-based retry index),
    /// jittered to a seeded-random point in `[50%, 100%]`.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let doubled = self
            .retry
            .base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16));
        let nominal = doubled.min(self.retry.max_delay);
        let unit = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        nominal.mul_f64(0.5 + 0.5 * unit)
    }

    fn record_latency(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.latencies.push_back(ns);
        if self.latencies.len() > LATENCY_WINDOW {
            self.latencies.pop_front();
        }
    }
}

fn request_on(client: &mut Client, request: &Request) -> Result<Response, ClientError> {
    match client.call(request)? {
        Response::Error { message } => Err(ClientError::Server(message)),
        response => Ok(response),
    }
}

/// One attempt on its own thread and connection. The result channel may
/// be gone by the time it answers (the other attempt won) — that is the
/// normal fate of a losing hedge.
fn spawn_attempt(
    addr: SocketAddr,
    request: Request,
    hedged: bool,
    tx: mpsc::Sender<(bool, Result<Response, ClientError>)>,
) {
    std::thread::spawn(move || {
        let outcome = Client::connect_timeout(addr, Duration::from_secs(5))
            .and_then(|mut client| request_on(&mut client, &request));
        let _ = tx.send((hedged, outcome));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_deterministic() {
        let retry = RetryConfig {
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
            seed: 9,
            ..RetryConfig::default()
        };
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut a = ResilientClient::new(addr, retry.clone());
        let mut b = ResilientClient::new(addr, retry);
        for attempt in 1..=10 {
            let da = a.backoff(attempt);
            let db = b.backoff(attempt);
            assert_eq!(da, db, "same seed, same schedule");
            let nominal = Duration::from_millis(10)
                .saturating_mul(1 << (attempt - 1).min(16))
                .min(Duration::from_millis(100));
            assert!(da <= nominal, "jitter only shrinks: {da:?} > {nominal:?}");
            assert!(da >= nominal.mul_f64(0.5), "jitter floor: {da:?}");
        }
    }

    #[test]
    fn different_seeds_give_different_jitter() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mk = |seed| {
            ResilientClient::new(
                addr,
                RetryConfig {
                    seed,
                    ..RetryConfig::default()
                },
            )
        };
        let (mut a, mut b) = (mk(1), mk(2));
        let schedule_a: Vec<_> = (1..=8).map(|i| a.backoff(i)).collect();
        let schedule_b: Vec<_> = (1..=8).map(|i| b.backoff(i)).collect();
        assert_ne!(schedule_a, schedule_b);
    }

    #[test]
    fn hedge_delay_clamps_and_warms_up() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut client = ResilientClient::new(addr, RetryConfig::default()).with_hedging(
            HedgeConfig {
                min_samples: 4,
                initial_delay: Duration::from_millis(50),
                floor: Duration::from_millis(2),
                cap: Duration::from_millis(20),
            },
        );
        // Cold: initial delay, clamped into [floor, cap].
        assert_eq!(client.hedge_delay(), Some(Duration::from_millis(20)));
        // Warm with fast samples: p99 below the floor clamps up.
        for _ in 0..8 {
            client.record_latency(Duration::from_micros(100));
        }
        assert_eq!(client.hedge_delay(), Some(Duration::from_millis(2)));
        // Slow samples: p99 above the cap clamps down.
        for _ in 0..8 {
            client.record_latency(Duration::from_millis(400));
        }
        assert_eq!(client.hedge_delay(), Some(Duration::from_millis(20)));
    }

    #[test]
    fn no_hedge_config_means_no_hedging() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let client = ResilientClient::new(addr, RetryConfig::default());
        assert_eq!(client.hedge_delay(), None);
    }
}
