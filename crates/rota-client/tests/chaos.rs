//! Chaos end-to-end: a retrying client against a fault-injecting
//! server must reach full verdict agreement with an in-process
//! reference controller.
//!
//! The seeded [`FaultPlan`] adds latency, truncates response frames
//! mid-write (forcing client reconnect + retry, absorbed by the
//! server's per-shard decision cache), and fires one forced shard
//! panic (forcing an `overloaded` bounce, a worker restart, and a
//! retry). Through all of it:
//!
//! * the server never crashes and keeps answering,
//! * the panicked shard restarts exactly once and keeps its state
//!   (injected panics fire *before* the controller mutates),
//! * the [`ResilientClient`] turns every fault into a successful
//!   decision that matches what a monolithic controller decides.
//!
//! Also pins down loadtest determinism: with `deterministic` set, the
//! request schedule is a pure function of the config.

use std::time::Duration;

use rota_actor::{Granularity, TableCostModel};
use rota_admission::{AdmissionController, AdmissionRequest, RotaPolicy};
use rota_client::{HedgeConfig, LoadtestConfig, ResilientClient, RetryConfig};
use rota_interval::TimePoint;
use rota_server::protocol::Response;
use rota_server::spec::{computation_to_json, ComputationSpec};
use rota_server::{FaultPlan, Server, ServerConfig};
use rota_workload::{base_resources, generate_job, JobShape, WorkloadConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Chain-shaped (single-location) jobs so the sharded server and the
/// monolithic reference controller see identical per-location state
/// and must agree on every verdict.
fn chain_workload() -> WorkloadConfig {
    WorkloadConfig::new(42)
        .with_nodes(4)
        .with_horizon(64)
        .with_shape(JobShape::Chain { evals: 3 })
        .with_slack(3.0)
}

#[test]
fn retrying_client_agrees_with_reference_under_chaos() {
    const JOBS: usize = 80;
    let workload = chain_workload();
    let theta = base_resources(&workload);
    let plan = FaultPlan::parse("seed=7,latency_ms=2,latency_p=0.2,truncate_p=0.15,panic_nth=10")
        .expect("valid chaos spec");
    let shards = 2;
    let config = ServerConfig {
        shards,
        fault_plan: Some(plan),
        ..ServerConfig::ephemeral()
    };
    let server = Server::spawn(config, RotaPolicy, &theta).expect("spawn chaos server");

    let mut reference = AdmissionController::new(RotaPolicy, theta, TimePoint::ZERO);
    let phi = TableCostModel::paper();
    let retry = RetryConfig {
        max_attempts: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(50),
        budget: Duration::from_secs(10),
        seed: 99,
    };
    let mut client =
        ResilientClient::new(server.local_addr(), retry).with_hedging(HedgeConfig::default());

    let mut rng = StdRng::seed_from_u64(workload.seed);
    let mut accepted = 0usize;
    for i in 0..JOBS {
        let arrival = rng.gen_range(0..workload.horizon / 2);
        let job = generate_job(&workload, &mut rng, &format!("chaos{i}"), arrival);
        let expected = reference
            .submit(&AdmissionRequest::price(
                job.clone(),
                &phi,
                Granularity::MaximalRun,
            ))
            .is_accept();
        let spec = ComputationSpec::from_json(&computation_to_json(&job))
            .expect("job encodes as a spec");
        let response = client
            .admit(spec, Granularity::MaximalRun)
            .expect("retries exhaust every injected fault");
        match response {
            Response::Decision { accepted: got, .. } => {
                assert_eq!(
                    got, expected,
                    "job {i}: chaos broke verdict agreement with the reference controller"
                );
                accepted += usize::from(got);
            }
            other => panic!("job {i}: no decision after retries: {:?}", other.to_json()),
        }
    }
    // Chaos must not have biased the workload into one verdict.
    assert!(accepted > 0, "no job was admitted");
    assert!(accepted < JOBS, "no job was refused");

    // The forced panic actually fired, bounced a request (which the
    // client retried), and the worker restarted.
    let snapshot = server.registry().snapshot();
    assert_eq!(snapshot.counter("server.faults.panic"), Some(1));
    let restarts: u64 = (0..shards)
        .map(|s| {
            snapshot
                .counter(&format!("server.shard.restarts{{shard={s}}}"))
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(restarts, 1, "the panicked shard restarts exactly once");
    let stats = client.stats();
    assert!(
        stats.retries >= 1,
        "the panic bounce and ~15% truncation rate must force retries, stats: {stats:?}"
    );
    // Truncations did happen — otherwise this test lost its teeth.
    assert!(
        snapshot.counter("server.faults.truncate").unwrap_or(0) >= 1,
        "no response frame was truncated"
    );
    server.shutdown();
}

#[test]
fn same_config_yields_identical_request_schedules() {
    let addr = "127.0.0.1:1".parse().expect("addr"); // never dialed
    let mut config = LoadtestConfig::new(addr);
    config.deterministic = true;
    config.jobs = 60;
    config.connections = 3;
    config.workload = chain_workload();

    let first = rota_client::request_schedule(&config).expect("schedule");
    let second = rota_client::request_schedule(&config).expect("schedule");
    assert_eq!(first, second, "same seed must give the same schedule");

    // Shape: every job appears exactly once, round-robin over
    // connections.
    assert_eq!(first.len(), 3);
    let total: usize = first.iter().map(Vec::len).sum();
    assert_eq!(total, 60);
    assert_eq!(first[0][0], "lt0");
    assert_eq!(first[1][0], "lt1");
    assert_eq!(first[2][0], "lt2");
    assert_eq!(first[0][1], "lt3");

    // A different seed reshuffles the generated jobs (names are stable
    // by index, so compare the full schedule via a generated field —
    // re-deriving with another seed must not be identical when jobs
    // differ in content; the cheap observable is the schedule of a
    // different job count).
    let mut other = LoadtestConfig::new(addr);
    other.deterministic = true;
    other.jobs = 61;
    other.connections = 3;
    other.workload = chain_workload();
    let third = rota_client::request_schedule(&other).expect("schedule");
    assert_ne!(first, third, "different configs must differ");
}
